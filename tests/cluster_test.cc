// Integration tests: the full narrow waist assembled, exercised end to
// end in both K8s and Kd modes — upscale, downscale, Kd speedup,
// ownership guard, multi-function scaling.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "model/objects.h"

namespace kd::cluster {
namespace {

using controllers::Mode;

class ClusterTest : public ::testing::TestWithParam<Mode> {
 protected:
  std::unique_ptr<Cluster> MakeCluster(int nodes) {
    ClusterConfig config;
    config.mode = GetParam();
    config.num_nodes = nodes;
    config.realistic_pod_template = false;  // logic-focused tests
    auto cluster = std::make_unique<Cluster>(engine_, std::move(config));
    cluster->Boot();
    return cluster;
  }

  sim::Engine engine_;
};

TEST_P(ClusterTest, BootEstablishesControlPlane) {
  auto cluster = MakeCluster(4);
  if (GetParam() == Mode::kKd) {
    EXPECT_TRUE(cluster->autoscaler().link_ready());
    EXPECT_TRUE(cluster->deployment_controller().link_ready());
    EXPECT_TRUE(cluster->replicaset_controller().link_ready());
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(cluster->scheduler().KubeletLinkReady(Cluster::NodeName(i)));
    }
  }
  EXPECT_EQ(cluster->TotalReadyPods(), 0u);
}

TEST_P(ClusterTest, ScaleUpProducesReadyPods) {
  auto cluster = MakeCluster(4);
  cluster->RegisterFunction("fn");
  cluster->ScaleTo("fn", 8);
  ASSERT_TRUE(cluster->RunUntil(
      [&] { return cluster->ReadyPodCount("fn") == 8; }, Seconds(120)))
      << "only " << cluster->ReadyPodCount("fn") << " pods ready";
  // Pods landed on real nodes with capacity accounting.
  std::int64_t total_alloc = 0;
  for (int i = 0; i < 4; ++i) {
    total_alloc += cluster->scheduler().AllocatedCpuOn(Cluster::NodeName(i));
  }
  EXPECT_EQ(total_alloc, 8 * 250);
}

TEST_P(ClusterTest, ScaleUpSpreadsAcrossNodes) {
  auto cluster = MakeCluster(4);
  cluster->RegisterFunction("fn");
  cluster->ScaleTo("fn", 8);
  ASSERT_TRUE(cluster->RunUntil(
      [&] { return cluster->ReadyPodCount("fn") == 8; }, Seconds(120)));
  // Least-allocated placement: 2 pods per node.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster->scheduler().AllocatedCpuOn(Cluster::NodeName(i)), 500)
        << "node " << i;
  }
}

TEST_P(ClusterTest, ScaleDownRemovesPods) {
  auto cluster = MakeCluster(4);
  cluster->RegisterFunction("fn");
  cluster->ScaleTo("fn", 6);
  ASSERT_TRUE(cluster->RunUntil(
      [&] { return cluster->ReadyPodCount("fn") == 6; }, Seconds(120)));
  cluster->ScaleTo("fn", 2);
  ASSERT_TRUE(cluster->RunUntil(
      [&] { return cluster->ReadyPodCount("fn") == 2; }, Seconds(120)))
      << "still " << cluster->ReadyPodCount("fn") << " pods";
  // Tombstones are garbage collected once the terminations land (Kd).
  if (GetParam() == Mode::kKd) {
    ASSERT_TRUE(cluster->RunUntil(
        [&] {
          return cluster->replicaset_controller().tombstone_count() == 0 &&
                 cluster->scheduler().tombstone_count() == 0;
        },
        Seconds(30)));
  }
}

TEST_P(ClusterTest, ScaleToZeroDrainsFunction) {
  auto cluster = MakeCluster(2);
  cluster->RegisterFunction("fn");
  cluster->ScaleTo("fn", 4);
  ASSERT_TRUE(cluster->RunUntil(
      [&] { return cluster->ReadyPodCount("fn") == 4; }, Seconds(120)));
  cluster->ScaleTo("fn", 0);
  ASSERT_TRUE(cluster->RunUntil(
      [&] { return cluster->ReadyPodCount("fn") == 0; }, Seconds(120)));
}

TEST_P(ClusterTest, MultipleFunctionsScaleIndependently) {
  auto cluster = MakeCluster(8);
  for (int f = 0; f < 5; ++f) {
    cluster->RegisterFunction("fn-" + std::to_string(f));
  }
  for (int f = 0; f < 5; ++f) {
    cluster->ScaleTo("fn-" + std::to_string(f), f + 1);
  }
  ASSERT_TRUE(cluster->RunUntil(
      [&] {
        for (int f = 0; f < 5; ++f) {
          if (cluster->ReadyPodCount("fn-" + std::to_string(f)) !=
              static_cast<std::size_t>(f + 1)) {
            return false;
          }
        }
        return true;
      },
      Seconds(200)));
  EXPECT_EQ(cluster->TotalReadyPods(), 1u + 2 + 3 + 4 + 5);
}

TEST_P(ClusterTest, RepeatedScaleCallsConverge) {
  auto cluster = MakeCluster(4);
  cluster->RegisterFunction("fn");
  // A burst of conflicting decisions; the last one wins (level
  // triggered).
  cluster->ScaleTo("fn", 3);
  cluster->ScaleTo("fn", 7);
  cluster->ScaleTo("fn", 5);
  ASSERT_TRUE(cluster->RunUntil(
      [&] { return cluster->ReadyPodCount("fn") == 5; }, Seconds(120)));
  // And it stays there (no oscillation).
  engine_.RunFor(Seconds(5));
  EXPECT_EQ(cluster->ReadyPodCount("fn"), 5u);
}

TEST_P(ClusterTest, CapacityLimitLeavesExcessPending) {
  auto cluster = MakeCluster(1);  // one node, 10 CPU => 40 pods of 250m
  cluster->RegisterFunction("fn");
  cluster->ScaleTo("fn", 45);
  cluster->RunUntil([&] { return cluster->ReadyPodCount("fn") >= 40; },
                    Seconds(200));
  engine_.RunFor(Seconds(5));
  EXPECT_EQ(cluster->ReadyPodCount("fn"), 40u);  // capacity-bound
}

INSTANTIATE_TEST_SUITE_P(Modes, ClusterTest,
                         ::testing::Values(Mode::kK8s, Mode::kKd),
                         [](const ::testing::TestParamInfo<Mode>& param_info) {
                           return controllers::ModeName(param_info.param);
                         });

// --- Kd-specific behaviour --------------------------------------------

TEST(ClusterKdTest, KdFasterThanK8sOnBurst) {
  // The headline effect: scaling out a burst of pods is much faster
  // through direct message passing than through the API server.
  auto run = [](ClusterConfig config) {
    sim::Engine engine;
    config.realistic_pod_template = true;  // wire sizes matter here
    Cluster cluster(engine, std::move(config));
    cluster.Boot();
    cluster.RegisterFunction("fn");
    const Time start = engine.now();
    cluster.ScaleTo("fn", 100);
    EXPECT_TRUE(cluster.RunUntil(
        [&] { return cluster.ReadyPodCount("fn") == 100; }, Seconds(600)));
    return engine.now() - start;
  };
  const Duration k8s = run(ClusterConfig::K8s(40));
  const Duration kd = run(ClusterConfig::Kd(40));
  EXPECT_GT(k8s, 2 * kd) << "K8s=" << FormatDuration(k8s)
                         << " Kd=" << FormatDuration(kd);
}

TEST(ClusterKdTest, ExternalReplicasWriteRejected) {
  sim::Engine engine;
  ClusterConfig config = ClusterConfig::Kd(2);
  config.realistic_pod_template = false;
  Cluster cluster(engine, std::move(config));
  cluster.Boot();
  cluster.RegisterFunction("fn");
  engine.RunFor(Milliseconds(100));

  // An external client tries to scale the guarded Deployment directly.
  apiserver::ApiClient external(engine, cluster.apiserver(), "external", 100,
                                100);
  const model::ApiObject* dep =
      cluster.apiserver().Peek(model::kKindDeployment, "fn");
  ASSERT_NE(dep, nullptr);
  model::ApiObject update = *dep;
  model::SetReplicas(update, 50);
  Status status = OkStatus();
  external.Update(update, [&](StatusOr<model::ApiObject> r) {
    status = r.status();
  });
  engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);

  // Removing the annotation hands control back (the documented opt-out).
  model::ApiObject release = *cluster.apiserver().Peek(
      model::kKindDeployment, "fn");
  model::SetKubeDirectManaged(release, false);
  model::SetReplicas(release, 3);
  Status release_status = InternalError("never");
  external.Update(release,
                  [&](StatusOr<model::ApiObject> r) {
                    release_status = r.status();
                  });
  engine.Run();
  EXPECT_TRUE(release_status.ok()) << release_status.ToString();
}

TEST(ClusterKdTest, PodsHiddenUntilReady) {
  // §5 exclusive ownership: ephemeral pods must not appear in the API
  // server until the Kubelet publishes them.
  sim::Engine engine;
  ClusterConfig config = ClusterConfig::Kd(2);
  config.realistic_pod_template = false;
  Cluster cluster(engine, std::move(config));
  cluster.Boot();
  cluster.RegisterFunction("fn");
  cluster.ScaleTo("fn", 4);
  // Probe while the scale-out is in flight: every pod visible in the
  // API server must already be Running.
  bool saw_nonrunning = false;
  for (int i = 0; i < 600; ++i) {
    engine.RunFor(Milliseconds(5));
    for (const model::ApiObject* pod :
         cluster.apiserver().PeekAll(model::kKindPod)) {
      if (model::GetPodPhase(*pod) != model::PodPhase::kRunning) {
        saw_nonrunning = true;
      }
    }
  }
  EXPECT_FALSE(saw_nonrunning);
  EXPECT_EQ(cluster.ReadyPodCount("fn"), 4u);
}

}  // namespace
}  // namespace kd::cluster
