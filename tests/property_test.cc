// Randomized model-walk property tests — the executable counterpart of
// the paper's TLA+ specification (appendix).
//
// Each walk drives the full Kd cluster through a random interleaving
// of the spec's actions (scaling commands, controller crashes +
// restarts, link disconnections via partition/heal, pod evictions,
// API-server and per-shard blips, arbitrary time advancement), then
// closes with the Liveness
// Assumption (§4.4): the narrow waist becomes totally connected long
// enough for end-to-end message passing. The checker then asserts:
//
//   KdConvergence — |ready pods| == last scaling command;
//   KdSafety      — pod state agrees along the chain (a predicate that
//                   holds at a suffix holds upstream): every pod a
//                   Kubelet runs is known, with the same binding, to
//                   the Scheduler and the ReplicaSet controller;
//   Uniqueness    — no pod is ever claimed by two Kubelets (checked at
//                   every step, not just at quiescence);
//   Lifecycle     — pods never reappear after removal from the API
//                   server with the same identity (Terminating is
//                   irreversible);
//   EndpointsConvergence — the KubeProxy routing table (fed by the
//                   Endpoints controller) equals the Running pod IPs
//                   once the system quiesces.
//
// The action set covers the whole chain, including crash/restart of
// the Endpoints controller and KubeProxy and partition/heal of their
// link, plus two operational actions from the scenario engine's
// catalog: spot-reclaim notices (mark -> drain -> machine taken ->
// replacement) and single rolling-upgrade steps (a cursor through the
// downstream-first victim order). A Gateway rides the walk through the
// cluster's real endpoint-discovery leg, with invocations issued at
// random steps; its accounting invariant — every invocation ever
// issued is completed or still pending, at EVERY step — is the
// no-lost-invocations-during-drain guarantee the scenario engine's
// SloGuard checks, here under arbitrary interleavings.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/fault_point.h"
#include "common/rng.h"
#include "faas/gateway.h"
#include "model/objects.h"

namespace kd::cluster {
namespace {

using model::ApiObject;
using model::kKindPod;

constexpr int kNodes = 3;

class ModelWalk {
 public:
  explicit ModelWalk(std::uint64_t seed) : rng_(seed) {
    // LaneSilence: the runtime lane checker rides every walk — no
    // event may touch state owned by another component instance's
    // lane across the whole crash/blip/partition/shard action mix.
    engine_.lane_checker().Enable();
    ClusterConfig config = ClusterConfig::Kd(kNodes);
    config.realistic_pod_template = false;
    config.node_cpu_milli = 4000;  // 16 pods per node, 48 total
    config.scheduler.cancel_after_failures = 5;
    cluster_ = std::make_unique<Cluster>(engine_, std::move(config));
    cluster_->Boot();
    cluster_->RegisterFunction("fn");
    // A gateway on the cluster's real endpoint-discovery leg, the same
    // wiring ClusterBackend uses: KubeProxy's sink feeds the routing
    // table the invocations dispatch against.
    gateway_ = std::make_unique<faas::Gateway>(engine_);
    faas::FunctionSpec spec;
    spec.name = "fn";
    gateway_->RegisterFunction(spec);
    cluster_->kube_proxy().SetSink(
        [this](const std::string& function,
               const std::vector<std::string>& addresses) {
          gateway_->UpdateEndpoints(function, addresses);
        });
  }

  void Run(int steps) {
    for (int i = 0; i < steps; ++i) {
      Step();
      CheckStepInvariants();
    }
    CloseAndCheckConvergence();
  }

 private:
  void Step() {
    switch (rng_.UniformInt(15)) {
      case 0:
      case 1:
      case 2: {  // scaling command (weighted: the common action)
        desired_ = static_cast<int>(rng_.UniformInt(13));
        cluster_->ScaleTo("fn", desired_);
        break;
      }
      case 3: {  // crash + restart a random controller
        switch (rng_.UniformInt(6)) {
          case 0:
            cluster_->autoscaler().Crash();
            cluster_->autoscaler().Restart();
            break;
          case 1:
            cluster_->deployment_controller().Crash();
            cluster_->deployment_controller().Restart();
            break;
          case 2:
            cluster_->replicaset_controller().Crash();
            cluster_->replicaset_controller().Restart();
            break;
          case 3:
            cluster_->scheduler().Crash();
            cluster_->scheduler().Restart();
            // A fresh scheduler re-learns reclamation marks from the
            // node informer; the drain-placement invariant
            // re-baselines once it does.
            drain_baseline_.clear();
            break;
          case 4:
            cluster_->endpoints_controller().Crash();
            cluster_->endpoints_controller().Restart();
            break;
          case 5:
            cluster_->kube_proxy().Crash();
            cluster_->kube_proxy().Restart();
            break;
        }
        // The platform is level-triggered: it re-issues its latest
        // decision on its next evaluation tick.
        cluster_->ScaleTo("fn", desired_);
        break;
      }
      case 4: {  // kubelet crash + restart
        const int k = static_cast<int>(rng_.UniformInt(kNodes));
        cluster_->kubelet(k).Crash();
        cluster_->kubelet(k).Restart();
        break;
      }
      case 5: {  // partition a random narrow-waist link
        PartitionRandomLink(/*heal=*/false);
        break;
      }
      case 6: {  // heal a random partition
        PartitionRandomLink(/*heal=*/true);
        break;
      }
      case 7: {  // API-server blip: crash + immediate restart
        // Every watch breaks and every informer relists; committed
        // state survives (etcd-backed store).
        cluster_->apiserver().Crash();
        cluster_->apiserver().Restart();
        break;
      }
      case 8: {  // API-server outage window
        // The server stays down while the walk keeps issuing actions —
        // API-path work piles into retries, the Kd data path keeps
        // flowing over the hierarchy links. Restart always lands, so
        // the Liveness Assumption holds at close. Crash()/Restart()
        // are no-ops when windows overlap.
        cluster_->apiserver().Crash();
        engine_.ScheduleAfter(
            Milliseconds(static_cast<std::int64_t>(
                200 + rng_.UniformInt(1300))),
            [this] { cluster_->apiserver().Restart(); });
        break;
      }
      case 9: {  // crashpoint: arm a numbered-operation crash seam
        // The surprise shutdown fires at a near-future operation index
        // — possibly many steps later, in the middle of whatever the
        // walk is doing then. RepairCrashed() below restarts the
        // victim once the deferred crash lands.
        FaultPoint* fault = nullptr;
        switch (rng_.UniformInt(5)) {
          case 0:
            fault = &cluster_->apiserver().persist_fault();
            api_seam_armed_ = true;
            break;
          case 1:
            fault = &cluster_->scheduler().harness().handshake_fault();
            break;
          case 2:
            fault = &cluster_->kubelet(static_cast<int>(
                                           rng_.UniformInt(kNodes)))
                         .harness()
                         .handshake_fault();
            break;
          case 3:
            fault = &cluster_->replicaset_controller()
                         .harness()
                         .tombstone_fault();
            break;
          case 4:
            fault = &cluster_->scheduler().harness().tombstone_fault();
            break;
        }
        fault->Arm(fault->ops() + rng_.UniformInt(30));
        break;
      }
      case 10: {  // evict a random running pod at its kubelet
        std::vector<std::pair<int, std::string>> candidates;
        for (int k = 0; k < kNodes; ++k) {
          for (const ApiObject* pod :
               cluster_->kubelet(k).cache().List(kKindPod)) {
            candidates.emplace_back(k, pod->Key());
          }
        }
        if (!candidates.empty()) {
          const auto& [k, key] =
              candidates[rng_.UniformInt(candidates.size())];
          cluster_->kubelet(k).Evict(key);
        }
        break;
      }
      case 11: {  // shard blip: crash + restart one control-plane shard
        // Only that shard's keyspace slice breaks its watches; sources
        // on the other shards must ride through untouched. With one
        // shard (the default matrix leg) this degenerates to case 7.
        const int s = static_cast<int>(
            rng_.UniformInt(cluster_->apiserver().num_shards()));
        cluster_->apiserver().CrashShard(s);
        cluster_->apiserver().RestartShard(s);
        break;
      }
      case 12: {  // spot-reclaim notice / completion (scenario catalog)
        const int k = static_cast<int>(rng_.UniformInt(kNodes));
        const std::string node = Cluster::NodeName(k);
        if (reclaim_marked_.count(node)) {
          // The provider takes the machine: instances on it die
          // abruptly (the gateway requeues their in-flight work), the
          // kubelet goes down, and the replacement comes back with a
          // cleared mark.
          FailInstancesOn(node);
          cluster_->kubelet(k).Crash();
          MarkReclaim(node, 0);
          cluster_->kubelet(k).Restart();
          reclaim_marked_.erase(node);
          drain_baseline_.erase(node);
        } else if (reclaim_marked_.size() + 1 <
                   static_cast<std::size_t>(kNodes)) {
          // Leave at least one node unmarked so close-time convergence
          // always has somewhere to place.
          MarkReclaim(node, static_cast<std::int64_t>(
                                ToMillis(engine_.now() + Minutes(10))));
          reclaim_marked_.insert(node);
        }
        break;
      }
      case 13: {  // one rolling-upgrade step (downstream-first cursor)
        const int victims = 5 + cluster_->apiserver().num_shards();
        const int v = upgrade_cursor_ % victims;
        switch (v) {
          case 0:
            cluster_->scheduler().Crash();
            cluster_->scheduler().Restart();
            drain_baseline_.clear();
            break;
          case 1:
            cluster_->replicaset_controller().Crash();
            cluster_->replicaset_controller().Restart();
            break;
          case 2:
            cluster_->endpoints_controller().Crash();
            cluster_->endpoints_controller().Restart();
            break;
          case 3:
            cluster_->deployment_controller().Crash();
            cluster_->deployment_controller().Restart();
            break;
          case 4:
            cluster_->autoscaler().Crash();
            cluster_->autoscaler().Restart();
            break;
          default:
            cluster_->apiserver().CrashShard(v - 5);
            cluster_->apiserver().RestartShard(v - 5);
            break;
        }
        ++upgrade_cursor_;
        cluster_->ScaleTo("fn", desired_);  // level-triggered re-issue
        break;
      }
      default: {  // advance time
        engine_.RunFor(Milliseconds(static_cast<std::int64_t>(
            1 + rng_.UniformInt(400))));
        break;
      }
    }
    // Data-plane traffic rides the walk: invocations at random steps
    // exercise the gateway across drains, upgrades, and partitions.
    if (rng_.UniformInt(2) == 0) {
      faas::Invocation inv;
      inv.function = "fn";
      inv.arrival = engine_.now();
      inv.duration = Milliseconds(
          static_cast<std::int64_t>(20 + rng_.UniformInt(300)));
      gateway_->Invoke(std::move(inv));
    }
    engine_.RunFor(Milliseconds(static_cast<std::int64_t>(
        rng_.UniformInt(50))));
    RepairCrashed();
  }

  // Restarts every component a fired crash seam took down. Controllers
  // only go down via the seams here (the walk's own crash actions
  // restart synchronously); the API server is restarted only when its
  // seam fired, so outage windows (case 8) keep their scheduled
  // repair.
  void RepairCrashed() {
    bool restarted = false;
    // Gated on the arming flag, not fired() alone — fired() latches
    // until the next Arm, and a stale latch must not cut short the
    // outage windows of case 8.
    if (api_seam_armed_ && cluster_->apiserver().persist_fault().fired()) {
      api_seam_armed_ = false;
      if (!cluster_->apiserver().up()) cluster_->apiserver().Restart();
    }
    if (cluster_->scheduler().harness().crashed()) {
      cluster_->scheduler().Restart();
      drain_baseline_.clear();
      restarted = true;
    }
    if (cluster_->replicaset_controller().harness().crashed()) {
      cluster_->replicaset_controller().Restart();
      restarted = true;
    }
    for (int k = 0; k < kNodes; ++k) {
      if (cluster_->kubelet(k).harness().crashed()) {
        cluster_->kubelet(k).Restart();
      }
    }
    // Level-triggered platform: re-issue the latest decision.
    if (restarted) cluster_->ScaleTo("fn", desired_);
  }

  void DisarmAllFaults() {
    cluster_->apiserver().persist_fault().Disarm();
    cluster_->scheduler().harness().handshake_fault().Disarm();
    cluster_->scheduler().harness().tombstone_fault().Disarm();
    cluster_->replicaset_controller().harness().tombstone_fault().Disarm();
    for (int k = 0; k < kNodes; ++k) {
      cluster_->kubelet(k).harness().handshake_fault().Disarm();
    }
  }

  void PartitionRandomLink(bool heal) {
    using controllers::Addresses;
    std::vector<std::pair<std::string, std::string>> links = {
        {Addresses::Autoscaler(), Addresses::DeploymentController()},
        {Addresses::DeploymentController(), Addresses::ReplicaSetController()},
        {Addresses::ReplicaSetController(), Addresses::Scheduler()},
        {Addresses::EndpointsController(), Addresses::KubeProxy()},
    };
    for (int k = 0; k < kNodes; ++k) {
      links.emplace_back(Addresses::Scheduler(),
                         Addresses::Kubelet(Cluster::NodeName(k)));
    }
    const auto& [a, b] = links[rng_.UniformInt(links.size())];
    if (heal) {
      cluster_->network().Heal(a, b);
    } else {
      cluster_->network().Partition(a, b);
      partitioned_.insert({a, b});
    }
  }

  void HealAll() {
    for (const auto& [a, b] : partitioned_) cluster_->network().Heal(a, b);
    partitioned_.clear();
  }

  // Writes the provider's reclamation notice (absolute sim ms; 0
  // clears) onto the Node object — the same store-seeded channel the
  // ScenarioRunner uses.
  void MarkReclaim(const std::string& node, std::int64_t at_ms) {
    const ApiObject* current =
        cluster_->apiserver().Peek(model::kKindNode, node);
    if (current == nullptr) return;
    ApiObject copy = *current;
    model::SetNodeReclaimAtMs(copy, at_ms);
    cluster_->apiserver().SeedObject(std::move(copy));
  }

  // Abrupt instance loss: the Running pods' addresses on `node` die at
  // the gateway; their in-flight work requeues, never drops.
  void FailInstancesOn(const std::string& node) {
    std::vector<std::string> doomed;
    for (const ApiObject* pod : cluster_->apiserver().PeekAll(kKindPod)) {
      if (model::GetNodeName(*pod) == node &&
          model::GetPodPhase(*pod) == model::PodPhase::kRunning) {
        doomed.push_back(model::GetPodIp(*pod));
      }
    }
    if (!doomed.empty()) gateway_->FailInstances(doomed);
  }

  // Invariants that must hold at EVERY step, not only at quiescence.
  void CheckStepInvariants() {
    // Uniqueness: one pod, at most one kubelet.
    std::map<std::string, int> claims;
    for (int k = 0; k < kNodes; ++k) {
      for (const ApiObject* pod :
           cluster_->kubelet(k).cache().List(kKindPod)) {
        ASSERT_EQ(++claims[pod->Key()], 1)
            << pod->Key() << " claimed by two kubelets";
      }
    }
    // Lifecycle: a published pod name never reappears after deletion.
    std::set<std::string> now;
    for (const ApiObject* pod : cluster_->apiserver().PeekAll(kKindPod)) {
      now.insert(pod->name);
    }
    for (const std::string& name : now) {
      ASSERT_FALSE(ever_deleted_.count(name))
          << "pod " << name << " was resurrected";
    }
    for (const std::string& name : ever_published_) {
      if (!now.count(name)) ever_deleted_.insert(name);
    }
    ever_published_.insert(now.begin(), now.end());
    // NoPlacementOntoDraining: once the Scheduler marks a node
    // draining, the set of pods it binds there only shrinks — fresh
    // capacity goes elsewhere. Baselines reset on scheduler restarts
    // (the mark is re-learned from the node informer).
    for (int k = 0; k < kNodes; ++k) {
      const std::string node = Cluster::NodeName(k);
      if (!cluster_->scheduler().IsNodeDraining(node)) {
        drain_baseline_.erase(node);
        continue;
      }
      std::set<std::string> on_node;
      for (const ApiObject* pod :
           cluster_->scheduler().pod_cache().List(kKindPod)) {
        if (model::GetNodeName(*pod) == node) on_node.insert(pod->Key());
      }
      auto it = drain_baseline_.find(node);
      if (it == drain_baseline_.end()) {
        drain_baseline_.emplace(node, std::move(on_node));
        continue;
      }
      for (const std::string& key : on_node) {
        ASSERT_TRUE(it->second.count(key))
            << key << " newly placed onto draining node " << node;
      }
      it->second = std::move(on_node);
    }
    // NoLostInvocations, at every step: everything ever issued is
    // completed or still pending (executing + queued). Reclaim
    // failovers requeue in-flight work; they must never drop it.
    ASSERT_EQ(static_cast<std::int64_t>(gateway_->total_invocations()),
              static_cast<std::int64_t>(gateway_->records().size()) +
                  gateway_->Demand("fn"));
  }

  void CloseAndCheckConvergence() {
    // Liveness Assumption (§4.4): total connectivity, long enough.
    HealAll();
    // Outstanding reclamation notices are revoked (the replacement
    // machines arrived): full placement capacity for the convergence
    // check, same as the ScenarioRunner's respawn path.
    for (const std::string& node : reclaim_marked_) MarkReclaim(node, 0);
    reclaim_marked_.clear();
    drain_baseline_.clear();
    // Unfired crash seams must not fire mid-close; a seam that fired
    // in the walk's last step still has its surprise shutdown pending
    // (deferred one engine step) — flush it, then repair.
    DisarmAllFaults();
    engine_.RunFor(Milliseconds(1));
    RepairCrashed();
    cluster_->ScaleTo("fn", desired_);  // platform's level-triggered loop
    // Converged-and-stayed: the first count match can be transient — a
    // still-unpublished pod balancing a not-yet-deleted record while
    // the repairs behind both sit deadline-hung against the recovering
    // API server (attempts issued into an outage stall for the full
    // client deadline before retrying). Require the count to hold
    // through a quiesce window long enough for any such in-flight
    // retry chain to drain.
    bool settled = false;
    for (int attempt = 0; attempt < 4 && !settled; ++attempt) {
      const bool converged = cluster_->RunUntil(
          [&] {
            return cluster_->ReadyPodCount("fn") ==
                   static_cast<std::size_t>(desired_);
          },
          Seconds(600));
      ASSERT_TRUE(converged) << "KdConvergence violated: want " << desired_
                             << " got " << cluster_->ReadyPodCount("fn");
      engine_.RunFor(Seconds(30));
      settled = cluster_->ReadyPodCount("fn") ==
                static_cast<std::size_t>(desired_);
    }
    ASSERT_TRUE(settled) << "did not stay converged: want " << desired_
                         << " got " << cluster_->ReadyPodCount("fn");

    const auto& sched_cache = cluster_->scheduler().pod_cache();
    const auto& rs_cache = cluster_->replicaset_controller().pod_cache();
    for (int k = 0; k < kNodes; ++k) {
      for (const ApiObject* pod :
           cluster_->kubelet(k).cache().List(kKindPod)) {
        const std::string key = pod->Key();
        // Suffix predicate: "pod X runs on node k" — must hold upstream.
        const ApiObject* at_sched = sched_cache.Get(key);
        ASSERT_NE(at_sched, nullptr)
            << key << " at kubelet " << k << " unknown to scheduler";
        EXPECT_EQ(model::GetNodeName(*at_sched), Cluster::NodeName(k));
        const ApiObject* at_rs = rs_cache.Get(key);
        ASSERT_NE(at_rs, nullptr)
            << key << " at kubelet " << k << " unknown to RS controller";
        EXPECT_EQ(model::GetNodeName(*at_rs), Cluster::NodeName(k));
      }
    }
    // Tombstones drained (all terminations settled).
    EXPECT_EQ(cluster_->replicaset_controller().tombstone_count(), 0u);
    EXPECT_EQ(cluster_->scheduler().tombstone_count(), 0u);
    // InformerReconvergence: after any number of API-server outages,
    // the informer-synced caches hold exactly the server's committed
    // state — same keys, same resource versions (relist diffing lost
    // nothing, synthesized nothing extra).
    const auto& ep_cache = cluster_->endpoints_controller().cache();
    for (const std::string& kind :
         {std::string(model::kKindService), std::string(kKindPod)}) {
      const std::map<std::string, std::uint64_t> truth =
          cluster_->apiserver().VersionMap(kind);
      const std::vector<const ApiObject*> view = ep_cache.List(kind);
      ASSERT_EQ(view.size(), truth.size())
          << "endpoints informer cache diverged for " << kind;
      for (const ApiObject* obj : view) {
        auto it = truth.find(obj->Key());
        ASSERT_NE(it, truth.end()) << obj->Key() << " not on the server";
        EXPECT_EQ(obj->resource_version, it->second) << obj->Key();
      }
    }
    // EndpointsConvergence: the data plane's routing table (KubeProxy,
    // fed by the Endpoints controller's stream) agrees with the set of
    // Running pod IPs the API server publishes.
    const std::vector<std::string> want = cluster_->ReadyPodAddresses("fn");
    const std::vector<std::string> got =
        cluster_->kube_proxy().AddressesFor("fn");
    EXPECT_EQ(std::set<std::string>(got.begin(), got.end()),
              std::set<std::string>(want.begin(), want.end()))
        << "KubeProxy routing table diverged from ready pods";
    // LaneSilence: zero cross-lane conflicts recorded over the walk.
    EXPECT_EQ(engine_.lane_checker().total_conflicts(), 0u)
        << engine_.lane_checker().FormatReport();
    // Gateway drain: with any capacity at all, every still-pending
    // invocation eventually dispatches and completes.
    if (desired_ > 0) {
      EXPECT_TRUE(cluster_->RunUntil(
          [&] { return gateway_->Demand("fn") == 0; }, Seconds(600)))
          << "queued invocations never drained";
    }
    EXPECT_EQ(static_cast<std::int64_t>(gateway_->total_invocations()),
              static_cast<std::int64_t>(gateway_->records().size()) +
                  gateway_->Demand("fn"));
  }

  sim::Engine engine_;
  Rng rng_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<faas::Gateway> gateway_;
  int desired_ = 0;
  int upgrade_cursor_ = 0;
  bool api_seam_armed_ = false;
  // Nodes carrying an unexpired reclamation mark, and per draining
  // node the pod set the Scheduler last had bound there (shrink-only).
  std::set<std::string> reclaim_marked_;
  std::map<std::string, std::set<std::string>> drain_baseline_;
  std::set<std::pair<std::string, std::string>> partitioned_;
  std::set<std::string> ever_published_;
  std::set<std::string> ever_deleted_;
};

class ModelWalkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelWalkTest, RandomWalkConvergesAndStaysSafe) {
  ModelWalk walk(GetParam());
  walk.Run(/*steps=*/40);
}

// Seed matrix: 1..20 by default; PROPERTY_SEEDS overrides it with
// either a range ("1-200") or a comma list ("7,13,42") — used by CI
// soaks and to replay a single failing seed locally.
std::vector<std::uint64_t> SeedMatrix() {
  std::vector<std::uint64_t> seeds;
  const char* spec = std::getenv("PROPERTY_SEEDS");
  if (spec == nullptr || *spec == '\0') {
    for (std::uint64_t s = 1; s <= 20; ++s) seeds.push_back(s);
    return seeds;
  }
  const std::string text(spec);
  const auto dash = text.find('-');
  if (dash != std::string::npos && text.find(',') == std::string::npos) {
    const std::uint64_t lo = std::strtoull(text.c_str(), nullptr, 10);
    const std::uint64_t hi =
        std::strtoull(text.c_str() + dash + 1, nullptr, 10);
    for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
  } else {
    std::size_t pos = 0;
    while (pos < text.size()) {
      seeds.push_back(std::strtoull(text.c_str() + pos, nullptr, 10));
      const auto comma = text.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (seeds.empty()) seeds.push_back(1);  // malformed spec: still run
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelWalkTest,
                         ::testing::ValuesIn(SeedMatrix()));

// A focused long walk with heavier failure pressure.
TEST(ModelWalkLongTest, HundredStepWalk) {
  ModelWalk walk(0xC0FFEE);
  walk.Run(/*steps=*/100);
}

}  // namespace
}  // namespace kd::cluster
