// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace kd::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.empty());
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  e.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  e.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), Milliseconds(30));
}

TEST(EngineTest, TiesBreakBySchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Time fired_at = -1;
  e.ScheduleAt(Milliseconds(10), [&] {
    e.ScheduleAfter(Milliseconds(5), [&] { fired_at = e.now(); });
  });
  e.Run();
  EXPECT_EQ(fired_at, Milliseconds(15));
}

TEST(EngineTest, PastTimesClampToNow) {
  Engine e;
  e.ScheduleAt(Milliseconds(10), [&] {
    e.ScheduleAt(Milliseconds(1), [&] { EXPECT_EQ(e.now(), Milliseconds(10)); });
  });
  e.Run();
  EXPECT_EQ(e.now(), Milliseconds(10));
}

TEST(EngineTest, NegativeDelayClampsToZero) {
  Engine e;
  bool fired = false;
  e.ScheduleAfter(-5, [&] { fired = true; });
  e.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), 0);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  EventId id = e.ScheduleAt(Milliseconds(10), [&] { fired = true; });
  EXPECT_TRUE(e.Cancel(id));
  e.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(e.empty());
}

TEST(EngineTest, CancelTwiceReturnsFalse) {
  Engine e;
  EventId id = e.ScheduleAt(1, [] {});
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(kInvalidEventId));
}

TEST(EngineTest, CancelAfterFireReturnsFalse) {
  Engine e;
  EventId id = e.ScheduleAt(1, [] {});
  e.Run();
  EXPECT_FALSE(e.Cancel(id));
}

TEST(EngineTest, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.RunUntil(Seconds(5));
  EXPECT_EQ(e.now(), Seconds(5));
}

TEST(EngineTest, RunUntilLeavesFutureEvents) {
  Engine e;
  bool early = false, late = false;
  e.ScheduleAt(Milliseconds(10), [&] { early = true; });
  e.ScheduleAt(Milliseconds(100), [&] { late = true; });
  e.RunUntil(Milliseconds(50));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(e.now(), Milliseconds(50));
  EXPECT_EQ(e.pending_events(), 1u);
  e.Run();
  EXPECT_TRUE(late);
}

TEST(EngineTest, RunForIsRelative) {
  Engine e;
  e.RunUntil(Milliseconds(10));
  bool fired = false;
  e.ScheduleAfter(Milliseconds(5), [&] { fired = true; });
  e.RunFor(Milliseconds(5));
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), Milliseconds(15));
}

TEST(EngineTest, StopHaltsRun) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(i, [&] {
      ++count;
      if (count == 3) e.Stop();
    });
  }
  e.Run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.pending_events(), 7u);
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.ScheduleAfter(1, recurse);
  };
  e.ScheduleAfter(0, recurse);
  e.Run();
  EXPECT_EQ(depth, 100);
}

TEST(EngineTest, EventLimitGuardsLivelock) {
  Engine e;
  e.set_event_limit(50);
  std::function<void()> forever = [&] { e.ScheduleAfter(1, forever); };
  e.ScheduleAfter(0, forever);
  e.Run();
  EXPECT_TRUE(e.hit_event_limit());
  EXPECT_EQ(e.processed_events(), 50u);
}

TEST(EngineTest, StepProcessesOneEvent) {
  Engine e;
  int count = 0;
  e.ScheduleAt(1, [&] { ++count; });
  e.ScheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.Step());
}

TEST(EngineTest, CancelledEventsDontBlockRunUntil) {
  Engine e;
  EventId id = e.ScheduleAt(Milliseconds(1), [] {});
  bool fired = false;
  e.ScheduleAt(Milliseconds(2), [&] { fired = true; });
  e.Cancel(id);
  e.RunUntil(Milliseconds(5));
  EXPECT_TRUE(fired);
}

TEST(EngineTest, PendingEventsCountsLiveOnly) {
  Engine e;
  EventId a = e.ScheduleAt(1, [] {});
  e.ScheduleAt(2, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  e.Cancel(a);
  EXPECT_EQ(e.pending_events(), 1u);
}

}  // namespace
}  // namespace kd::sim
