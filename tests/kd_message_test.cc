// Tests for the minimal message format (§3.2): encoding round trips,
// wire sizes, batching, and dynamic materialization.
#include <gtest/gtest.h>

#include "kubedirect/materialize.h"
#include "kubedirect/message.h"
#include "model/objects.h"
#include "runtime/cache.h"

namespace kd::kubedirect {
namespace {

using model::ApiObject;
using model::MakePodFromTemplate;
using model::MakeReplicaSet;
using model::RealisticPodTemplateSpec;

ApiObject Rs(const std::string& name, int replicas = 1) {
  return MakeReplicaSet(name, "fn", 1, replicas,
                        RealisticPodTemplateSpec("fn"));
}

TEST(KdMessageTest, UpsertRoundTrip) {
  KdMessage msg;
  msg.obj_key = "Pod/p1";
  msg.attrs.emplace("spec.nodeName", KdValue::Literal("worker1"));
  msg.attrs.emplace("spec",
                    KdValue::Pointer("ReplicaSet/rs1", "spec.template.spec"));
  WireMessage wire;
  wire.type = WireMessage::Type::kUpsert;
  wire.message = msg;
  auto parsed = WireMessage::Parse(wire.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, WireMessage::Type::kUpsert);
  EXPECT_EQ(parsed->message, msg);
}

TEST(KdMessageTest, AllScalarTypesRoundTrip) {
  for (auto type :
       {WireMessage::Type::kRemove, WireMessage::Type::kTombstone,
        WireMessage::Type::kAck}) {
    WireMessage wire;
    wire.type = type;
    wire.key = "Pod/p9";
    auto parsed = WireMessage::Parse(wire.Serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->type, type);
    EXPECT_EQ(parsed->key, "Pod/p9");
  }
}

TEST(KdMessageTest, StateVersionsRoundTrip) {
  WireMessage wire;
  wire.type = WireMessage::Type::kStateVersions;
  wire.versions["Pod/a"] = 0xDEADBEEFCAFEF00DULL;
  wire.versions["Pod/b"] = 42;
  auto parsed = WireMessage::Parse(wire.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->versions, wire.versions);
}

TEST(KdMessageTest, StateRequestAndSnapshotRoundTrip) {
  WireMessage request;
  request.type = WireMessage::Type::kStateRequest;
  request.keys = {"Pod/a", "Pod/b"};
  auto parsed_request = WireMessage::Parse(request.Serialize());
  ASSERT_TRUE(parsed_request.ok());
  EXPECT_EQ(parsed_request->keys, request.keys);

  WireMessage snapshot;
  snapshot.type = WireMessage::Type::kStateSnapshot;
  snapshot.objects.push_back(Rs("rs1"));
  auto parsed_snapshot = WireMessage::Parse(snapshot.Serialize());
  ASSERT_TRUE(parsed_snapshot.ok());
  ASSERT_EQ(parsed_snapshot->objects.size(), 1u);
  EXPECT_EQ(parsed_snapshot->objects[0], snapshot.objects[0]);
}

TEST(KdMessageTest, ParseRejectsGarbage) {
  EXPECT_FALSE(WireMessage::Parse("nonsense").ok());
  EXPECT_FALSE(WireMessage::Parse("{\"t\":\"zz\"}").ok());
  EXPECT_FALSE(WireMessage::Parse("{\"t\":\"u\",\"m\":{\"a\":1}}").ok());
}

TEST(KdMessageTest, BatchRoundTrip) {
  std::vector<WireMessage> batch;
  for (int i = 0; i < 5; ++i) {
    WireMessage wire;
    wire.type = WireMessage::Type::kTombstone;
    wire.key = "Pod/p" + std::to_string(i);
    batch.push_back(wire);
  }
  auto parsed = ParseBatch(SerializeBatch(batch));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 5u);
  EXPECT_EQ((*parsed)[3].key, "Pod/p3");
}

// The headline size claim: a pod-creation message is two orders of
// magnitude smaller than the full serialized pod (~100 B vs ~17 KB).
TEST(KdMessageTest, PodCreateMessageIsTiny) {
  ApiObject rs = Rs("fn-v1");
  ApiObject pod = MakePodFromTemplate("fn-v1-0", rs);
  KdMessage msg = PodCreateMessage(pod, rs.Key());
  WireMessage wire;
  wire.type = WireMessage::Type::kUpsert;
  wire.message = msg;
  const std::size_t kd_size = wire.SerializedSize();
  const std::size_t full_size = pod.SerializedSize();
  EXPECT_LT(kd_size, 400u);
  EXPECT_GT(full_size, 10'000u);
  EXPECT_GT(full_size / kd_size, 30u);
}

TEST(KdMessageTest, DiffMessageCarriesOnlyChanges) {
  ApiObject rs = Rs("fn-v1");
  ApiObject pod = MakePodFromTemplate("p", rs);
  ApiObject scheduled = pod;
  model::SetNodeName(scheduled, "worker7");
  KdMessage msg = DiffMessage(pod, scheduled);
  ASSERT_EQ(msg.attrs.size(), 1u);
  EXPECT_TRUE(msg.attrs.count("spec.nodeName"));
  EXPECT_EQ(msg.attrs.at("spec.nodeName").literal().as_string(), "worker7");
}

TEST(KdMessageTest, FullObjectMessageMatchesObjectSize) {
  ApiObject rs = Rs("fn-v1");
  ApiObject pod = MakePodFromTemplate("p", rs);
  WireMessage wire;
  wire.type = WireMessage::Type::kUpsert;
  wire.message = FullObjectMessage(pod);
  // Naive full-object passing (Fig. 14 baseline) is the same order of
  // magnitude as the API object itself.
  EXPECT_GT(wire.SerializedSize(), pod.SerializedSize() / 2);
}

// --- Materialization -----------------------------------------------------

class MaterializeTest : public ::testing::Test {
 protected:
  MaterializeTest() {
    rs_ = Rs("fn-v1", 3);
    cache_.Upsert(rs_);
  }
  runtime::ObjectCache cache_;
  ApiObject rs_;
};

TEST_F(MaterializeTest, PodCreateResolvesTemplatePointer) {
  ApiObject pod = MakePodFromTemplate("fn-v1-0", rs_);
  KdMessage msg = PodCreateMessage(pod, rs_.Key());
  auto materialized = Materialize(msg, cache_);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  EXPECT_EQ(materialized->kind, model::kKindPod);
  EXPECT_EQ(materialized->name, "fn-v1-0");
  // The materialized pod is byte-identical to the original.
  EXPECT_EQ(materialized->spec, pod.spec);
  EXPECT_EQ(materialized->metadata, pod.metadata);
  EXPECT_EQ(model::GetPodPhase(*materialized), model::PodPhase::kPending);
}

TEST_F(MaterializeTest, PatchesExistingCachedObject) {
  ApiObject pod = MakePodFromTemplate("fn-v1-0", rs_);
  cache_.Upsert(pod);
  KdMessage msg;
  msg.obj_key = pod.Key();
  msg.attrs.emplace("spec.nodeName", KdValue::Literal("worker3"));
  auto materialized = Materialize(msg, cache_);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(model::GetNodeName(*materialized), "worker3");
  // Untouched attributes survive the patch.
  EXPECT_EQ(materialized->spec["functionName"].as_string(), "fn");
}

TEST_F(MaterializeTest, DanglingPointerFailsPrecondition) {
  KdMessage msg;
  msg.obj_key = "Pod/orphan";
  msg.attrs.emplace("spec", KdValue::Pointer("ReplicaSet/missing",
                                             "spec.template.spec"));
  auto result = Materialize(msg, cache_);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MaterializeTest, BadPointerPathFails) {
  KdMessage msg;
  msg.obj_key = "Pod/p";
  msg.attrs.emplace("spec",
                    KdValue::Pointer(rs_.Key(), "spec.no.such.path"));
  EXPECT_EQ(Materialize(msg, cache_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MaterializeTest, MalformedKeysRejected) {
  KdMessage msg;
  msg.obj_key = "no-slash";
  EXPECT_EQ(Materialize(msg, cache_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MaterializeTest, NullLiteralErasesAttr) {
  ApiObject pod = MakePodFromTemplate("p", rs_);
  model::SetNodeName(pod, "w1");
  cache_.Upsert(pod);
  KdMessage msg;
  msg.obj_key = pod.Key();
  msg.attrs.emplace("spec.nodeName", KdValue::Literal(model::Value()));
  auto materialized = Materialize(msg, cache_);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(model::GetNodeName(*materialized), "");
}

TEST_F(MaterializeTest, UnknownSectionRejected) {
  ApiObject obj;
  obj.kind = "Pod";
  obj.name = "p";
  EXPECT_FALSE(ApplyAttr(obj, "bogus.path", model::Value(1)).ok());
  EXPECT_TRUE(ApplyAttr(obj, "status.phase", model::Value("Pending")).ok());
}

TEST_F(MaterializeTest, RoundTripThroughWirePreservesEquality) {
  // Sender: create message; wire: serialize+parse; receiver:
  // materialize. End-to-end transparency check (§3.2).
  ApiObject pod = MakePodFromTemplate("fn-v1-9", rs_);
  model::SetNodeName(pod, "worker2");
  KdMessage create = PodCreateMessage(pod, rs_.Key());
  create.attrs.emplace("spec.nodeName", KdValue::Literal("worker2"));
  WireMessage wire;
  wire.type = WireMessage::Type::kUpsert;
  wire.message = create;
  auto parsed = WireMessage::Parse(wire.Serialize());
  ASSERT_TRUE(parsed.ok());
  auto materialized = Materialize(parsed->message, cache_);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(materialized->spec, pod.spec);
}

}  // namespace
}  // namespace kd::kubedirect
