// Tests for the API server substrate: rate limiter, CRUD + optimistic
// concurrency, watch pub-sub, admission control, and cost accounting.
#include <gtest/gtest.h>

#include "apiserver/apiserver.h"
#include "apiserver/client.h"
#include "model/objects.h"

namespace kd::apiserver {
namespace {

using model::ApiObject;
using model::kKindDeployment;
using model::kKindPod;
using model::MakeDeployment;
using model::MinimalPodTemplateSpec;

// --- TokenBucket -------------------------------------------------------

TEST(TokenBucketTest, BurstPassesImmediately) {
  sim::Engine engine;
  TokenBucket bucket(engine, 10.0, 5.0);
  int fired = 0;
  for (int i = 0; i < 5; ++i) bucket.Acquire([&] { ++fired; });
  EXPECT_EQ(fired, 5);  // all within burst, same instant
  EXPECT_EQ(engine.now(), 0);
}

TEST(TokenBucketTest, BeyondBurstWaitsForRefill) {
  sim::Engine engine;
  TokenBucket bucket(engine, 10.0, 1.0);  // 1 token, 10/s refill
  std::vector<Time> fire_times;
  for (int i = 0; i < 4; ++i) {
    bucket.Acquire([&] { fire_times.push_back(engine.now()); });
  }
  engine.Run();
  ASSERT_EQ(fire_times.size(), 4u);
  EXPECT_EQ(fire_times[0], 0);
  // Subsequent fires ~100ms apart (1/qps).
  for (int i = 1; i < 4; ++i) {
    EXPECT_NEAR(ToMillis(fire_times[i] - fire_times[i - 1]), 100.0, 1.0);
  }
}

TEST(TokenBucketTest, FifoOrder) {
  sim::Engine engine;
  TokenBucket bucket(engine, 1000.0, 1.0);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    bucket.Acquire([&order, i] { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(TokenBucketTest, IdleRefillRestoresBurst) {
  sim::Engine engine;
  TokenBucket bucket(engine, 10.0, 5.0);
  for (int i = 0; i < 5; ++i) bucket.Acquire([] {});
  engine.Run();
  engine.RunUntil(engine.now() + Seconds(10));
  EXPECT_NEAR(bucket.available(), 5.0, 1e-6);  // capped at burst
}

TEST(TokenBucketTest, TracksWaitTime) {
  sim::Engine engine;
  TokenBucket bucket(engine, 10.0, 1.0);
  bucket.Acquire([] {});
  bucket.Acquire([] {});
  engine.Run();
  EXPECT_GT(bucket.total_wait(), Milliseconds(90));
  EXPECT_EQ(bucket.total_acquired(), 2u);
}

// --- ApiServer fixture ---------------------------------------------------

class ApiServerTest : public ::testing::Test {
 protected:
  ApiServerTest()
      : server_(engine_, CostModel::Default()),
        client_(engine_, server_, "test-client", 1e6, 1e6) {}

  ApiObject NewDeployment(const std::string& name, int replicas) {
    return MakeDeployment(name, replicas, MinimalPodTemplateSpec(name));
  }

  StatusOr<ApiObject> CreateSync(ApiObject obj) {
    StatusOr<ApiObject> result = InternalError("callback never ran");
    client_.Create(std::move(obj),
                   [&](StatusOr<ApiObject> r) { result = std::move(r); });
    engine_.Run();
    return result;
  }

  StatusOr<ApiObject> UpdateSync(ApiObject obj) {
    StatusOr<ApiObject> result = InternalError("callback never ran");
    client_.Update(std::move(obj),
                   [&](StatusOr<ApiObject> r) { result = std::move(r); });
    engine_.Run();
    return result;
  }

  sim::Engine engine_;
  ApiServer server_;
  ApiClient client_;
};

TEST_F(ApiServerTest, CreateAssignsResourceVersion) {
  auto created = CreateSync(NewDeployment("fn", 1));
  ASSERT_TRUE(created.ok());
  EXPECT_GT(created->resource_version, 0u);
  EXPECT_NE(server_.Peek(kKindDeployment, "fn"), nullptr);
}

TEST_F(ApiServerTest, CreateDuplicateFails) {
  ASSERT_TRUE(CreateSync(NewDeployment("fn", 1)).ok());
  auto dup = CreateSync(NewDeployment("fn", 2));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(ApiServerTest, UpdateWithCurrentVersionSucceeds) {
  auto created = CreateSync(NewDeployment("fn", 1));
  ASSERT_TRUE(created.ok());
  ApiObject obj = *created;
  model::SetReplicas(obj, 5);
  auto updated = UpdateSync(obj);
  ASSERT_TRUE(updated.ok());
  EXPECT_GT(updated->resource_version, created->resource_version);
  EXPECT_EQ(model::GetReplicas(*server_.Peek(kKindDeployment, "fn")), 5);
}

TEST_F(ApiServerTest, UpdateWithStaleVersionConflicts) {
  auto created = CreateSync(NewDeployment("fn", 1));
  ASSERT_TRUE(created.ok());
  ApiObject fresh = *created;
  model::SetReplicas(fresh, 2);
  ASSERT_TRUE(UpdateSync(fresh).ok());
  // Second update still using the original (now stale) version.
  ApiObject stale = *created;
  model::SetReplicas(stale, 9);
  auto conflict = UpdateSync(stale);
  EXPECT_EQ(conflict.status().code(), StatusCode::kConflict);
  EXPECT_EQ(model::GetReplicas(*server_.Peek(kKindDeployment, "fn")), 2);
}

TEST_F(ApiServerTest, UpdateMissingObjectNotFound) {
  auto r = UpdateSync(NewDeployment("ghost", 1));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ApiServerTest, DeleteRemovesObject) {
  ASSERT_TRUE(CreateSync(NewDeployment("fn", 1)).ok());
  Status status = InternalError("never");
  client_.Delete(kKindDeployment, "fn", [&](Status s) { status = s; });
  engine_.Run();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(server_.Peek(kKindDeployment, "fn"), nullptr);
}

TEST_F(ApiServerTest, DeleteMissingNotFound) {
  Status status = OkStatus();
  client_.Delete(kKindDeployment, "ghost", [&](Status s) { status = s; });
  engine_.Run();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ApiServerTest, GetReturnsObject) {
  ASSERT_TRUE(CreateSync(NewDeployment("fn", 3)).ok());
  StatusOr<ApiObject> got = InternalError("never");
  client_.Get(kKindDeployment, "fn",
              [&](StatusOr<ApiObject> r) { got = std::move(r); });
  engine_.Run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(model::GetReplicas(*got), 3);
}

TEST_F(ApiServerTest, ListFiltersByKind) {
  ASSERT_TRUE(CreateSync(NewDeployment("a", 1)).ok());
  ASSERT_TRUE(CreateSync(NewDeployment("b", 1)).ok());
  ApiObject node = model::MakeNode("n1", 1000, 1024);
  ASSERT_TRUE(CreateSync(node).ok());
  StatusOr<std::vector<ApiObject>> listed = InternalError("never");
  client_.List(kKindDeployment,
               [&](StatusOr<std::vector<ApiObject>> r) { listed = std::move(r); });
  engine_.Run();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);
}

TEST_F(ApiServerTest, WatchReceivesLifecycleEvents) {
  std::vector<WatchEventType> events;
  server_.Watch(kKindDeployment,
                [&](const WatchEvent& e) { events.push_back(e.type); });
  auto created = CreateSync(NewDeployment("fn", 1));
  ASSERT_TRUE(created.ok());
  ApiObject obj = *created;
  model::SetReplicas(obj, 2);
  ASSERT_TRUE(UpdateSync(obj).ok());
  client_.Delete(kKindDeployment, "fn", [](Status) {});
  engine_.Run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], WatchEventType::kAdded);
  EXPECT_EQ(events[1], WatchEventType::kModified);
  EXPECT_EQ(events[2], WatchEventType::kDeleted);
}

TEST_F(ApiServerTest, WatchFiltersKind) {
  int pod_events = 0;
  server_.Watch(kKindPod, [&](const WatchEvent&) { ++pod_events; });
  ASSERT_TRUE(CreateSync(NewDeployment("fn", 1)).ok());
  engine_.Run();
  EXPECT_EQ(pod_events, 0);
}

TEST_F(ApiServerTest, UnwatchStopsDelivery) {
  int events = 0;
  WatchId id = server_.Watch(kKindDeployment,
                             [&](const WatchEvent&) { ++events; });
  ASSERT_TRUE(CreateSync(NewDeployment("a", 1)).ok());
  EXPECT_EQ(events, 1);
  server_.Unwatch(id);
  ASSERT_TRUE(CreateSync(NewDeployment("b", 1)).ok());
  EXPECT_EQ(events, 1);
}

TEST_F(ApiServerTest, AdmissionHookCanReject) {
  server_.AddAdmissionHook(
      [](AdmissionOp op, const ApiObject*, const ApiObject* incoming) {
        if (op == AdmissionOp::kUpdate && incoming &&
            model::GetReplicas(*incoming) > 10) {
          return PermissionDeniedError("replicas guarded");
        }
        return OkStatus();
      });
  auto created = CreateSync(NewDeployment("fn", 1));
  ASSERT_TRUE(created.ok());
  ApiObject obj = *created;
  model::SetReplicas(obj, 100);
  auto rejected = UpdateSync(obj);
  EXPECT_EQ(rejected.status().code(), StatusCode::kPermissionDenied);
  // Store unchanged; version not bumped.
  EXPECT_EQ(model::GetReplicas(*server_.Peek(kKindDeployment, "fn")), 1);
}

TEST_F(ApiServerTest, RejectedWriteEmitsNoWatchEvent) {
  server_.AddAdmissionHook(
      [](AdmissionOp op, const ApiObject*, const ApiObject*) {
        return op == AdmissionOp::kCreate
                   ? PermissionDeniedError("no creates")
                   : OkStatus();
      });
  int events = 0;
  server_.Watch(kKindDeployment, [&](const WatchEvent&) { ++events; });
  auto r = CreateSync(NewDeployment("fn", 1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(events, 0);
}

TEST_F(ApiServerTest, ApiCallTakesMilliseconds) {
  // The paper reports 10-35 ms for a standard API call under load and
  // a handful of milliseconds unloaded; an isolated write should land
  // in the low-millisecond band (etcd fsync dominates).
  const Time start = engine_.now();
  auto created = CreateSync(NewDeployment("fn", 1));
  ASSERT_TRUE(created.ok());
  const Duration latency = engine_.now() - start;
  EXPECT_GT(latency, Milliseconds(2));
  EXPECT_LT(latency, Milliseconds(35));
}

TEST_F(ApiServerTest, SaturationQueuesRequests) {
  // Blast more concurrent writes than the server has workers; the
  // later responses must be pushed out by queueing.
  const int n = 200;
  int completed = 0;
  Time last_done = 0;
  for (int i = 0; i < n; ++i) {
    client_.Create(NewDeployment("fn-" + std::to_string(i), 1),
                   [&](StatusOr<ApiObject> r) {
                     ASSERT_TRUE(r.ok());
                     ++completed;
                     last_done = engine_.now();
                   });
  }
  engine_.Run();
  EXPECT_EQ(completed, n);
  const auto& sample = server_.metrics().GetSample("api_call_latency");
  EXPECT_GT(sample.Max(), 2 * sample.Min());
  EXPECT_GT(last_done, Milliseconds(10));
}

TEST_F(ApiServerTest, MetricsCountReadsAndWrites) {
  ASSERT_TRUE(CreateSync(NewDeployment("fn", 1)).ok());
  StatusOr<ApiObject> got = InternalError("never");
  client_.Get(kKindDeployment, "fn",
              [&](StatusOr<ApiObject> r) { got = std::move(r); });
  engine_.Run();
  EXPECT_EQ(server_.metrics().GetCount("api_writes"), 1);
  EXPECT_EQ(server_.metrics().GetCount("api_reads"), 1);
  EXPECT_GT(server_.metrics().GetCount("api_bytes_in"), 0);
}

TEST_F(ApiServerTest, SeedObjectBypassesCosts) {
  server_.SeedObject(NewDeployment("fn", 7));
  const ApiObject* obj = server_.Peek(kKindDeployment, "fn");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(model::GetReplicas(*obj), 7);
  EXPECT_EQ(engine_.now(), 0);  // no simulated time passed
}

// --- client rate limiting ------------------------------------------------

TEST(ApiClientRateLimitTest, LimiterThrottlesBeyondBurst) {
  sim::Engine engine;
  ApiServer server(engine, CostModel::Default());
  // 10 QPS, burst 5: 50 creates should take roughly 4.5 s.
  ApiClient slow(engine, server, "slow", 10.0, 5.0);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    slow.Create(
        MakeDeployment("fn-" + std::to_string(i), 1,
                       MinimalPodTemplateSpec("fn")),
        [&](StatusOr<ApiObject> r) {
          ASSERT_TRUE(r.ok());
          ++completed;
        });
  }
  engine.Run();
  EXPECT_EQ(completed, 50);
  EXPECT_GT(engine.now(), Seconds(4));
  EXPECT_LT(engine.now(), Seconds(6));
}

TEST(ApiClientRateLimitTest, LargeObjectsCostMoreThanSmall) {
  sim::Engine engine;
  ApiServer server(engine, CostModel::Default());
  ApiClient client(engine, server, "c", 1e6, 1e6);

  Time small_done = 0, large_done = 0;
  ApiObject small = MakeDeployment("small", 1, MinimalPodTemplateSpec("s"));
  client.Create(small, [&](StatusOr<ApiObject>) { small_done = engine.now(); });
  engine.Run();
  const Duration small_latency = small_done;

  ApiObject large =
      MakeDeployment("large", 1, model::RealisticPodTemplateSpec("l"));
  const Time t0 = engine.now();
  client.Create(large, [&](StatusOr<ApiObject>) { large_done = engine.now(); });
  engine.Run();
  EXPECT_GT(large_done - t0, small_latency);
}

}  // namespace
}  // namespace kd::apiserver
