// kdlint fixture: R3 must fire on pointer-keyed containers.
// Line numbers are asserted by tests/kdlint_test.cc.
#include <map>
#include <set>

namespace fixture {

struct Pod {};

struct Tracker {
  std::map<Pod*, int> pending;  // line 11: R3 pointer key
  std::set<const Pod*> seen;    // line 12: R3 pointer key
};

}  // namespace fixture
