// kdlint fixture: a suppression without a reason is rejected — the
// finding it tried to cover stays live and R0 reports the empty
// waiver. Lines asserted by kdlint_test.cc.
#include <cstdlib>

namespace fixture {

int Entropy() {
  return rand();  // kdlint: allow(R1)
}

}  // namespace fixture
