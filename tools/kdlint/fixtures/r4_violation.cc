// kdlint fixture: R4 must fire on blanket [&] captures passed to the
// engine's Schedule entry points. Lines asserted by kdlint_test.cc.
namespace fixture {

struct Engine {
  template <class F>
  void ScheduleAfter(long delay, F&& fn);
};

void Burst(Engine& engine) {
  int local = 42;
  engine.ScheduleAfter(10, [&] { local += 1; });  // line 12: R4 blanket [&]
  engine.ScheduleAfter(20, [local] { (void)local; });  // explicit: clean
}

}  // namespace fixture
