// kdlint fixture: R1 must fire on wall-clock and entropy sources.
// Line numbers are asserted exactly by tests/kdlint_test.cc.
#include <chrono>
#include <cstdlib>

namespace fixture {

long WallClock() {
  auto t = std::chrono::system_clock::now();  // line 9: R1 system_clock
  return t.time_since_epoch().count();
}

int Entropy() {
  return rand();  // line 14: R1 rand
}

const char* Env() {
  return std::getenv("HOME");  // line 18: R1 getenv
}

}  // namespace fixture
