// kdlint fixture: the lane model's clean shapes — same-lane state,
// seam conduits, and seam handles — must produce no R7/R8 findings.
namespace fixture {

class KD_LANE_SEAM ApiClient {
 public:
  void Create(int obj);
};

struct Engine {
  template <class F>
  void ScheduleAt(long at, F&& fn);
};

class KD_LANE_OWNED(scheduler) Scheduler {
 public:
  void Reconcile(Engine& engine, ApiClient& api) {
    api.Create(1);
    engine.ScheduleAt(5, [this] { pending_ += 1; });
  }

 private:
  ApiClient* api_ = nullptr;  // seams may be held by handle
  int pending_ = 0;
};

}  // namespace fixture
