// kdlint fixture: R2 must fire when unordered iteration feeds the
// event schedule. Line numbers are asserted by tests/kdlint_test.cc.
#include <string>
#include <unordered_map>

namespace fixture {

struct Engine {
  template <class F>
  void ScheduleAfter(long delay, F&& fn);
};

struct Reconciler {
  Engine engine;
  std::unordered_map<std::string, int> replicas;

  void Kick() {
    for (const auto& [name, count] : replicas) {  // line 18: R2
      engine.ScheduleAfter(count, [name] { (void)name; });
    }
  }
};

}  // namespace fixture
