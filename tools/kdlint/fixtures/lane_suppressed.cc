// kdlint fixture: R7/R8 suppressions with reasons demote findings
// without hiding them from --show-suppressed.
namespace fixture {

class KD_LANE_OWNED(kubelet) Kubelet {
 public:
  void Evict(int pod);
};

class KD_LANE_OWNED(scheduler) Scheduler {
 public:
  void Drain(Kubelet* node) {
    node->Evict(1);  // kdlint: allow(R7) fixture: sanctioned seam-to-be
  }

 private:
  Kubelet* standby_;  // kdlint: allow(R8) fixture: transitional handle
};

}  // namespace fixture
