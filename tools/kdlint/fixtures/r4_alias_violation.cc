// kdlint fixture: R4 must fire when Schedule* is reached through a
// member or alias, and on blanket [=] defaults that smuggle the raw
// `this` pointer. Lines asserted by kdlint_test.cc.
namespace fixture {

struct Engine {
  template <class F>
  void ScheduleAt(long at, F&& fn);
};

class Loop {
 public:
  void Arm() {
    int deadline = 5;
    engine_->ScheduleAt(1, [&] { count_ += deadline; });  // line 15: R4
    auto& e = *engine_;
    e.ScheduleAt(2, [deadline, this] { count_ += deadline; });  // clean
    e.ScheduleAt(3, [=] { count_ += 1; });  // line 18: R4 [=] this
  }

 private:
  Engine* engine_ = nullptr;
  int count_ = 0;
};

}  // namespace fixture
