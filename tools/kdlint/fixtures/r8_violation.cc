// kdlint fixture: R8 must fire when a raw cross-lane handle is
// stored as a member or captured into a scheduled closure. Lines
// asserted by kdlint_test.cc.
namespace fixture {

class KD_LANE_OWNED(kubelet) Kubelet {
 public:
  int pods = 0;
};

struct Engine {
  template <class F>
  void ScheduleAt(long at, F&& fn);
};

class KD_LANE_OWNED(scheduler) Scheduler {
 public:
  void Rebalance(Engine& engine, Kubelet* victim) {
    engine.ScheduleAt(10, [victim] { victim->pods -= 1; });  // line 19: R8
  }

 private:
  Kubelet& node_;  // line 23: R8 stored cross-lane handle
};

}  // namespace fixture
