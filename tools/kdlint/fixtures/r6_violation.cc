// kdlint fixture: R6 must fire on hand-rolled shard arithmetic (a `%`
// with a shard-named identifier nearby) and stay quiet on modulo that
// has nothing to do with sharding. Lines asserted by
// tests/kdlint_test.cc.
#include <cstdint>
#include <string>

namespace fixture {

std::uint64_t Fnv(const std::string& key);

struct Client {
  int num_shards;

  int Route(const std::string& key) const {
    return Fnv(key) % num_shards;                 // line 16: R6
  }

  int Pick(std::uint64_t hash, int shard_count) const {
    int shard_id = hash % shard_count;            // line 20: R6
    return shard_id;
  }

  int Bucket(std::uint64_t hash, int buckets) const {
    return static_cast<int>(hash % buckets);      // plain modulo is fine
  }
};

}  // namespace fixture
