// kdlint fixture: R9 must fire on raw threading primitives (threads,
// locks, atomics — the engine owns all parallelism) and stay quiet on
// member accesses that merely share a name. Lines asserted exactly by
// tests/kdlint_test.cc.
#include <atomic>
#include <thread>

namespace fixture {

struct Worker {
  std::mutex mu;                         // line 11: R9 mutex
  std::atomic<int> counter{0};           // line 12: R9 atomic

  void Spawn() {
    std::thread t([] {});                // line 15: R9 thread
    t.join();
  }

  void Tick() {
    std::lock_guard<std::mutex> lk(mu);  // line 20: R9 lock_guard + mutex
    counter.fetch_add(1);
  }
};

// Accessing somebody else's member that shares a primitive's name
// stays quiet: `seam.mutex()` is a member call, not a raw primitive.
template <typename Seam>
int Quiet(Seam& seam) {
  return seam.mutex() ? 1 : 0;
}

}  // namespace fixture
