// kdlint fixture: R7 must fire when a lane-owned class reaches
// another lane's state directly or through an accessor chain; seam
// conduits stay clean. Lines asserted by kdlint_test.cc.
namespace fixture {

class KD_LANE_OWNED(kubelet) Kubelet {
 public:
  void Evict(int pod);
};

class KD_LANE_SEAM ApiClient {
 public:
  void Create(int obj);
};

struct Cluster {
  Kubelet& kubelet();
};

class KD_LANE_OWNED(scheduler) Scheduler {
 public:
  void Bind(Kubelet* node, ApiClient& api, Cluster& cluster) {
    node->Evict(1);  // line 23: R7 direct foreign-lane call
    api.Create(7);   // seam conduit: clean
    cluster.kubelet().Evict(2);  // line 25: R7 accessor chain
  }
};

}  // namespace fixture
