// kdlint fixture: suppression comments must demote findings without
// hiding them from --show-suppressed. Asserted by kdlint_test.cc.
#include <cstdlib>
#include <string>
#include <unordered_map>

namespace fixture {

struct Engine {
  template <class F>
  void ScheduleAfter(long delay, F&& fn);
};

int SeededEntropy() {
  return rand();  // kdlint: allow(R1) fixture: same-line waiver
}

struct Telemetry {
  Engine engine;
  std::unordered_map<std::string, int> counters;

  void Flush() {
    // kdlint: allow(R2) fixture: preceding-line waiver
    for (const auto& [key, value] : counters) {
      engine.ScheduleAfter(value, [key] { (void)key; });
    }
  }
};

}  // namespace fixture
