// kdlint fixture: R5 must fire when a policy class mutates an
// ObjectCache directly. Lines asserted by tests/kdlint_test.cc.
namespace fixture {

struct ApiObject {};

struct ObjectCache {
  void Upsert(ApiObject obj);
  void MarkInvalid(const char* key);
  const ApiObject* Get(const char* key) const;
};

struct Policy {
  ObjectCache pod_cache_;

  void Reconcile() {
    pod_cache_.Upsert(ApiObject{});        // line 17: R5 direct mutate
    pod_cache_.MarkInvalid("pods/p0");     // line 18: R5 direct mutate
    (void)pod_cache_.Get("pods/p0");       // reads are fine
  }
};

}  // namespace fixture
