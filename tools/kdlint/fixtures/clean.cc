// kdlint fixture: a file every rule must pass untouched — ordered
// containers, explicit captures, virtual time, seam-routed writes.
#include <map>
#include <string>

namespace fixture {

struct Engine {
  long now() const;
  template <class F>
  void ScheduleAfter(long delay, F&& fn);
};

struct ApiClient {
  void Update(const std::string& key);
};

struct Reconciler {
  Engine engine;
  ApiClient api;
  std::map<std::string, int> replicas;  // ordered: iteration is stable

  void Kick() {
    for (const auto& [name, count] : replicas) {
      engine.ScheduleAfter(count, [this, name] { api.Update(name); });
    }
  }
};

}  // namespace fixture
