// AST-accurate kdlint backend on the libclang C API, driven by the
// project's compile_commands.json. Only compiled when CMake finds
// clang-c/Index.h (see CMakeLists.txt); the token-mode fallback in
// rules.cc covers toolchains without libclang and is the mode the
// fixture tests always exercise.
//
// Headers and any file without a compile command fall back to the
// token analyzer, so one invocation always covers every input file.
#if defined(KDLINT_HAVE_LIBCLANG)

#include <clang-c/CXCompilationDatabase.h>
#include <clang-c/Index.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "kdlint.h"

namespace kdlint {
namespace {

std::string ToStd(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c != nullptr ? c : "";
  clang_disposeString(s);
  return out;
}

int LineOf(CXCursor cursor) {
  unsigned line = 0;
  clang_getExpansionLocation(clang_getCursorLocation(cursor), nullptr, &line,
                             nullptr, nullptr);
  return static_cast<int>(line);
}

bool InMainFile(CXCursor cursor) {
  return clang_Location_isFromMainFile(clang_getCursorLocation(cursor)) != 0;
}

const std::set<std::string>& BannedIdents() {
  static const std::set<std::string> kSet = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "random_device",  "gettimeofday", "clock_gettime",
      "localtime",      "localtime_r",  "gmtime",
      "mktime",         "getenv",       "setenv",
      "srand",          "rand",         "drand48",
      "random_shuffle", "sleep_for",    "sleep_until",
      "nanosleep",      "usleep",       "time"};
  return kSet;
}

// R9 (mirrors rules.cc): raw threading primitives; `thread`/`atomic`
// are resolved through the referenced declaration's parent namespace
// instead of token context.
const std::set<std::string>& BannedThreadingIdents() {
  static const std::set<std::string> kSet = {
      "jthread",          "mutex",
      "recursive_mutex",  "timed_mutex",
      "recursive_timed_mutex",
      "shared_mutex",     "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic_flag",      "atomic_thread_fence",
      "atomic_signal_fence",
      "lock_guard",       "unique_lock",
      "scoped_lock",      "shared_lock",
      "call_once",        "once_flag",
      "memory_order_relaxed", "memory_order_acquire",
      "memory_order_release", "memory_order_acq_rel",
      "memory_order_seq_cst"};
  return kSet;
}

const std::set<std::string>& OrderEscapingCalls() {
  static const std::set<std::string> kSet = {
      "ScheduleAt", "ScheduleAfter", "Schedule",    "Send",
      "Enqueue",    "EnqueueAfter",  "Create",      "Update",
      "Delete",     "Upsert",        "Remove",      "MarkInvalid",
      "DropInvalid", "Publish",      "Emit",        "Push",
      "Dispatch"};
  return kSet;
}

const std::set<std::string>& ScheduleEntryPoints() {
  static const std::set<std::string> kSet = {"ScheduleAt", "ScheduleAfter",
                                             "Schedule"};
  return kSet;
}

const std::set<std::string>& CacheMutators() {
  static const std::set<std::string> kSet = {"Upsert", "Remove", "MarkInvalid",
                                             "DropInvalid", "Clear"};
  return kSet;
}

std::string CanonicalTypeSpelling(CXCursor cursor) {
  return ToStd(clang_getTypeSpelling(
      clang_getCanonicalType(clang_getCursorType(cursor))));
}

// First template argument of a container type spelling, e.g.
// "std::map<kd::Pod *, int>" -> "kd::Pod *".
std::string FirstTemplateArg(const std::string& type) {
  const std::size_t open = type.find('<');
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < type.size(); ++i) {
    if (type[i] == '<') ++depth;
    if (type[i] == '>') --depth;
    if ((type[i] == ',' && depth == 1) || depth == 0) {
      return type.substr(open + 1, i - open - 1);
    }
  }
  return "";
}

bool IsAssociativeContainer(const std::string& type) {
  for (const char* name :
       {"std::map<", "std::set<", "std::multimap<", "std::multiset<",
        "std::unordered_map<", "std::unordered_set<",
        "std::unordered_multimap<", "std::unordered_multiset<",
        "std::priority_queue<"}) {
    if (type.find(name) != std::string::npos) return true;
  }
  return false;
}

struct Ctx {
  std::string file;
  const Options* opts;
  std::vector<Finding>* out;
  CXTranslationUnit tu;

  bool Want(const char* rule) const {
    return (opts->rules.empty() || opts->rules.count(rule) > 0) &&
           RuleAppliesTo(*opts, rule, file);
  }
  void Add(int line, const char* rule, std::string message) {
    out->push_back({file, line, rule, std::move(message), false, ""});
  }
};

// --- lane-ownership helpers (R7/R8) --------------------------------
//
// The ownership model comes from the driver's cross-TU harvest
// (Options::lane_of / seam_types), shared with the token analyzer so
// both backends judge against the same declared map; the AST side
// resolves receivers by canonical *type* rather than by name, which
// also catches accessor chains (`cluster_.autoscaler().ScaleTo()`).

// Lane of the first lane-owned class named (with identifier
// boundaries) in a canonical type spelling; "" if none.
std::string LaneInTypeSpelling(const std::string& type,
                               const Options& opts) {
  auto ident_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  for (const auto& [cls, lane] : opts.lane_of) {
    for (std::size_t pos = type.find(cls); pos != std::string::npos;
         pos = type.find(cls, pos + 1)) {
      const bool left_ok = pos == 0 || !ident_char(type[pos - 1]);
      const std::size_t end = pos + cls.size();
      const bool right_ok = end >= type.size() || !ident_char(type[end]);
      if (left_ok && right_ok) return lane;
    }
  }
  return "";
}

bool IsHandleSpelling(const std::string& type) {
  return type.find('*') != std::string::npos ||
         type.find('&') != std::string::npos;
}

// Lane owning a declaration, found by walking semantic parents until a
// KD_LANE_OWNED class; "" when the decl belongs to no lane. Works for
// out-of-line member definitions too (semantic, not lexical, parent).
std::string LaneOfDecl(CXCursor decl, const Options& opts,
                       std::string* cls_out) {
  CXCursor p = clang_getCursorSemanticParent(decl);
  for (int depth = 0; depth < 64 && !clang_Cursor_isNull(p); ++depth) {
    const CXCursorKind k = clang_getCursorKind(p);
    if (k == CXCursor_TranslationUnit) break;
    if (k == CXCursor_ClassDecl || k == CXCursor_StructDecl) {
      const std::string name = ToStd(clang_getCursorSpelling(p));
      const auto it = opts.lane_of.find(name);
      if (it != opts.lane_of.end()) {
        if (cls_out != nullptr) *cls_out = name;
        return it->second;
      }
    }
    const CXCursor next = clang_getCursorSemanticParent(p);
    if (clang_equalCursors(next, p) != 0) break;
    p = next;
  }
  return "";
}

// --- subtree scans used by R2/R4 -----------------------------------

struct SubtreeScan {
  bool unordered_range = false;
  std::string escape_call;
  int escape_line = 0;
  bool blanket_ref_lambda = false;
  int lambda_line = 0;
  bool copy_this_lambda = false;  // [=] lambda whose body uses `this`
  int copy_lambda_line = 0;
  CXTranslationUnit tu;
};

// First tokens of a lambda: `[ & ]` / `[ & ,` is a blanket by-ref
// capture default, `[ = ]` / `[ = ,` a blanket copy default (libclang
// does not expose capture defaults in the C API, so we look at the
// spelling). Returns '&', '=', or 0.
char LambdaCaptureDefault(CXTranslationUnit tu, CXCursor lambda) {
  CXToken* toks = nullptr;
  unsigned n = 0;
  clang_tokenize(tu, clang_getCursorExtent(lambda), &toks, &n);
  char result = 0;
  if (n >= 3 && ToStd(clang_getTokenSpelling(tu, toks[0])) == "[") {
    const std::string second = ToStd(clang_getTokenSpelling(tu, toks[1]));
    const std::string third = ToStd(clang_getTokenSpelling(tu, toks[2]));
    if ((second == "&" || second == "=") &&
        (third == "]" || third == ",")) {
      result = second[0];
    }
  }
  clang_disposeTokens(tu, toks, n);
  return result;
}

CXChildVisitResult FindThisExpr(CXCursor cursor, CXCursor,
                                CXClientData data) {
  if (clang_getCursorKind(cursor) == CXCursor_CXXThisExpr) {
    *static_cast<bool*>(data) = true;
    return CXChildVisit_Break;
  }
  return CXChildVisit_Recurse;
}

// True if the lambda body reaches `this` (explicitly or through an
// implicit member access, which the AST still models as CXXThisExpr).
bool LambdaTouchesThis(CXCursor lambda) {
  bool found = false;
  clang_visitChildren(lambda, FindThisExpr, &found);
  return found;
}

CXChildVisitResult ScanSubtree(CXCursor cursor, CXCursor, CXClientData data) {
  auto* scan = static_cast<SubtreeScan*>(data);
  const CXCursorKind kind = clang_getCursorKind(cursor);
  if (kind == CXCursor_CallExpr) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    if (OrderEscapingCalls().count(name) > 0 && scan->escape_call.empty()) {
      scan->escape_call = name;
      scan->escape_line = LineOf(cursor);
    }
  }
  if (kind == CXCursor_LambdaExpr) {
    const char dflt = LambdaCaptureDefault(scan->tu, cursor);
    if (dflt == '&' && !scan->blanket_ref_lambda) {
      scan->blanket_ref_lambda = true;
      scan->lambda_line = LineOf(cursor);
    }
    if (dflt == '=' && !scan->copy_this_lambda &&
        LambdaTouchesThis(cursor)) {
      scan->copy_this_lambda = true;
      scan->copy_lambda_line = LineOf(cursor);
    }
  }
  if (clang_getCursorKind(cursor) != CXCursor_LambdaExpr) {
    const std::string type = CanonicalTypeSpelling(cursor);
    if (type.find("unordered_") != std::string::npos) {
      scan->unordered_range = true;
    }
  }
  return CXChildVisit_Recurse;
}

// Base object of a member call, for R5 receiver typing.
struct FirstChild {
  CXCursor cursor = clang_getNullCursor();
};
CXChildVisitResult TakeFirstChild(CXCursor cursor, CXCursor,
                                  CXClientData data) {
  static_cast<FirstChild*>(data)->cursor = cursor;
  return CXChildVisit_Break;
}

// Canonical type of the receiver of a member call ("" when the call
// has no member-ref callee). Shared by R5 and R7.
std::string MemberCallReceiverType(CXCursor call) {
  FirstChild callee;
  clang_visitChildren(call, TakeFirstChild, &callee);
  if (clang_getCursorKind(callee.cursor) != CXCursor_MemberRefExpr) {
    return "";
  }
  FirstChild base;
  clang_visitChildren(callee.cursor, TakeFirstChild, &base);
  if (clang_Cursor_isNull(base.cursor)) return "";
  return CanonicalTypeSpelling(base.cursor);
}

// --- R7/R8 subtree visitors ----------------------------------------

struct LaneScan {
  Ctx* ctx;
  std::string lane;  // lane owning the enclosing method
  std::string cls;
};

struct LambdaCaptureCheck {
  Ctx* ctx;
  std::string lane;
  bool reported = false;
};

// Flags references, inside a scheduled lambda, to declarations whose
// type is a raw handle to another lane's state (R8: the handle would
// cross the lane barrier when the event later fires).
CXChildVisitResult CheckCaptureRefs(CXCursor cursor, CXCursor,
                                    CXClientData data) {
  auto* chk = static_cast<LambdaCaptureCheck*>(data);
  if (chk->reported) return CXChildVisit_Break;
  if (clang_getCursorKind(cursor) == CXCursor_DeclRefExpr) {
    const CXCursor decl = clang_getCursorReferenced(cursor);
    if (!clang_Cursor_isNull(decl)) {
      const CXCursorKind dk = clang_getCursorKind(decl);
      if (dk == CXCursor_VarDecl || dk == CXCursor_ParmDecl ||
          dk == CXCursor_FieldDecl) {
        const std::string type = ToStd(clang_getTypeSpelling(
            clang_getCanonicalType(clang_getCursorType(decl))));
        const std::string foreign =
            LaneInTypeSpelling(type, *chk->ctx->opts);
        if (!foreign.empty() && foreign != chk->lane &&
            IsHandleSpelling(type)) {
          chk->ctx->Add(
              LineOf(cursor), "R8",
              "closure scheduled from lane '" + chk->lane +
                  "' captures '" + ToStd(clang_getCursorSpelling(cursor)) +
                  "', a handle to lane-'" + foreign +
                  "' state - the event would touch foreign state after "
                  "the lane barrier; route through a KD_LANE_SEAM");
          chk->reported = true;
          return CXChildVisit_Break;
        }
      }
    }
  }
  return CXChildVisit_Recurse;
}

CXChildVisitResult FindLambdasForR8(CXCursor cursor, CXCursor,
                                    CXClientData data) {
  if (clang_getCursorKind(cursor) == CXCursor_LambdaExpr) {
    clang_visitChildren(cursor, CheckCaptureRefs, data);
    return CXChildVisit_Continue;
  }
  return CXChildVisit_Recurse;
}

// Walks one lane-owned method body: member calls on foreign-lane
// receivers (R7) and scheduled closures capturing foreign handles
// (R8). Sanctioned KD_LANE_SEAM types are exempt by construction —
// they are not in lane_of, so their receivers resolve to no lane.
CXChildVisitResult VisitLaneSubtree(CXCursor cursor, CXCursor,
                                    CXClientData data) {
  auto* scan = static_cast<LaneScan*>(data);
  Ctx* ctx = scan->ctx;
  if (clang_getCursorKind(cursor) == CXCursor_CallExpr) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    if (ctx->Want("R7")) {
      const std::string recv = MemberCallReceiverType(cursor);
      if (!recv.empty()) {
        const std::string foreign = LaneInTypeSpelling(recv, *ctx->opts);
        if (!foreign.empty() && foreign != scan->lane) {
          ctx->Add(LineOf(cursor), "R7",
                   "'" + scan->cls + "' (lane '" + scan->lane +
                       "') reaches lane-'" + foreign + "' state through '" +
                       name +
                       "' - cross-lane effects must route through a "
                       "KD_LANE_SEAM conduit (net::, hierarchy, "
                       "ApiClient, watch hub)");
        }
      }
    }
    if (ctx->Want("R8") && ScheduleEntryPoints().count(name) > 0) {
      LambdaCaptureCheck chk{ctx, scan->lane, false};
      clang_visitChildren(cursor, FindLambdasForR8, &chk);
    }
  }
  return CXChildVisit_Recurse;
}

CXChildVisitResult Visit(CXCursor cursor, CXCursor, CXClientData data) {
  auto* ctx = static_cast<Ctx*>(data);
  if (!InMainFile(cursor)) return CXChildVisit_Continue;
  const CXCursorKind kind = clang_getCursorKind(cursor);

  if (ctx->Want("R1") && (kind == CXCursor_DeclRefExpr ||
                          kind == CXCursor_MemberRefExpr ||
                          kind == CXCursor_TypeRef)) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    // Strip any "class "/"struct " prefix a TypeRef spelling carries.
    const std::size_t space = name.rfind(' ');
    const std::string bare =
        space == std::string::npos ? name : name.substr(space + 1);
    if (BannedIdents().count(bare) > 0) {
      // Only flag `time` for the libc function, not arbitrary members.
      bool flag = bare != "time" || kind == CXCursor_DeclRefExpr;
      if (flag) {
        ctx->Add(LineOf(cursor), "R1",
                 "nondeterministic source '" + bare +
                     "' (wall clock / ambient entropy) - product code "
                     "must use sim::Engine::now() and kd::Rng so runs "
                     "stay bit-reproducible");
      }
    }
  }

  if (ctx->Want("R9") && (kind == CXCursor_DeclRefExpr ||
                          kind == CXCursor_MemberRefExpr ||
                          kind == CXCursor_TypeRef ||
                          kind == CXCursor_TemplateRef)) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    const std::size_t space = name.rfind(' ');
    const std::string bare =
        space == std::string::npos ? name : name.substr(space + 1);
    bool hit = BannedThreadingIdents().count(bare) > 0;
    if (!hit && (bare == "thread" || bare == "atomic")) {
      // Only the std:: types, not arbitrary identifiers that happen to
      // share the word: resolve through the referenced declaration.
      const CXCursor ref = clang_getCursorReferenced(cursor);
      const std::string parent =
          ToStd(clang_getCursorSpelling(clang_getCursorSemanticParent(ref)));
      hit = parent == "std";
    }
    if (hit) {
      ctx->Add(LineOf(cursor), "R9",
               "raw threading primitive '" + bare +
                   "' - parallelism is the engine's job (src/sim); "
                   "product code runs single-lane between barrier "
                   "epochs and must use sim::SeamLock for the "
                   "sanctioned commutative seams");
    }
  }

  if (ctx->Want("R2") && kind == CXCursor_CXXForRangeStmt) {
    SubtreeScan scan;
    scan.tu = ctx->tu;
    clang_visitChildren(cursor, ScanSubtree, &scan);
    if (scan.unordered_range && !scan.escape_call.empty()) {
      ctx->Add(LineOf(cursor), "R2",
               "iteration over an unordered container calls '" +
                   scan.escape_call +
                   "' - hash-table order escapes into event/wire order; "
                   "iterate an ordered container or a sorted snapshot");
    }
  }

  if (kind == CXCursor_FieldDecl && ctx->Want("R8")) {
    std::string cls;
    const std::string lane = LaneOfDecl(cursor, *ctx->opts, &cls);
    if (!lane.empty()) {
      const std::string type = CanonicalTypeSpelling(cursor);
      const std::string foreign = LaneInTypeSpelling(type, *ctx->opts);
      if (!foreign.empty() && foreign != lane && IsHandleSpelling(type)) {
        ctx->Add(LineOf(cursor), "R8",
                 "'" + cls + "' (lane '" + lane + "') stores a raw handle '" +
                     ToStd(clang_getCursorSpelling(cursor)) +
                     "' to lane-'" + foreign +
                     "' state across events - cross-lane reach must go "
                     "through a KD_LANE_SEAM conduit, not a held pointer");
      }
    }
  }

  if ((ctx->Want("R7") || ctx->Want("R8")) &&
      (kind == CXCursor_CXXMethod || kind == CXCursor_Constructor ||
       kind == CXCursor_Destructor || kind == CXCursor_FunctionDecl) &&
      clang_isCursorDefinition(cursor) != 0) {
    LaneScan scan{ctx, "", ""};
    scan.lane = LaneOfDecl(cursor, *ctx->opts, &scan.cls);
    if (!scan.lane.empty()) {
      clang_visitChildren(cursor, VisitLaneSubtree, &scan);
    }
  }

  if ((kind == CXCursor_VarDecl || kind == CXCursor_FieldDecl) &&
      ctx->Want("R3")) {
    const std::string type = CanonicalTypeSpelling(cursor);
    if (IsAssociativeContainer(type)) {
      std::string arg = FirstTemplateArg(type);
      while (!arg.empty() && arg.back() == ' ') arg.pop_back();
      if (!arg.empty() && arg.back() == '*') {
        ctx->Add(LineOf(cursor), "R3",
                 "container '" + ToStd(clang_getCursorSpelling(cursor)) +
                     "' is keyed by a pointer; pointer values differ "
                     "across runs, so any order or hash derived from them "
                     "is nondeterministic - key by a stable id instead");
      }
    }
  }

  if (kind == CXCursor_CallExpr) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    if (ctx->Want("R4") && ScheduleEntryPoints().count(name) > 0) {
      SubtreeScan scan;
      scan.tu = ctx->tu;
      clang_visitChildren(cursor, ScanSubtree, &scan);
      if (scan.blanket_ref_lambda) {
        ctx->Add(scan.lambda_line, "R4",
                 "closure passed to '" + name +
                     "' captures by blanket reference [&] - locals it "
                     "captures are dead by the time the event fires; "
                     "capture explicitly by value (guard re-entrancy "
                     "with an epoch or EventId)");
      }
      if (scan.copy_this_lambda) {
        ctx->Add(scan.copy_lambda_line, "R4",
                 "closure passed to '" + name +
                     "' uses a blanket [=] capture that implicitly "
                     "copies the raw `this` pointer - capture `this` "
                     "explicitly and guard re-entrancy with an epoch "
                     "or EventId");
      }
    }
    if (ctx->Want("R5") && CacheMutators().count(name) > 0) {
      FirstChild callee;
      clang_visitChildren(cursor, TakeFirstChild, &callee);
      if (clang_getCursorKind(callee.cursor) == CXCursor_MemberRefExpr) {
        FirstChild base;
        clang_visitChildren(callee.cursor, TakeFirstChild, &base);
        const std::string type = CanonicalTypeSpelling(base.cursor);
        if (type.find("ObjectCache") != std::string::npos) {
          ctx->Add(LineOf(cursor), "R5",
                   "policy class mutates an ObjectCache via '" + name +
                       "' - object mutations must flow through "
                       "runtime::ApiClient or a harness seam (annotate "
                       "deliberate ingress/write-through paths with "
                       "kdlint: allow(R5))");
        }
      }
    }
  }
  return CXChildVisit_Recurse;
}

bool ReadAll(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

bool RunClangMode(const std::vector<std::string>& files,
                  const std::string& compile_commands_dir,
                  const Options& opts, std::vector<Finding>& out) {
  std::string dir = compile_commands_dir;
  if (dir.empty()) dir = "build";
  CXCompilationDatabase_Error err = CXCompilationDatabase_NoError;
  CXCompilationDatabase db =
      clang_CompilationDatabase_fromDirectory(dir.c_str(), &err);
  if (err != CXCompilationDatabase_NoError) {
    std::cerr << "kdlint: cannot load compile_commands.json from '" << dir
              << "' (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
    return false;
  }
  CXIndex index = clang_createIndex(/*excludeDeclsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);

  for (const std::string& file : files) {
    const std::string abs =
        std::filesystem::absolute(file).generic_string();
    CXCompileCommands cmds =
        clang_CompilationDatabase_getCompileCommands(db, abs.c_str());
    const unsigned ncmds = clang_CompileCommands_getSize(cmds);
    if (ncmds == 0) {
      // Headers and un-built files: token fallback keeps coverage.
      clang_CompileCommands_dispose(cmds);
      std::string source;
      if (ReadAll(file, source)) {
        std::vector<Finding> per_file = AnalyzeSource(file, source, "", opts);
        out.insert(out.end(), per_file.begin(), per_file.end());
      }
      continue;
    }
    CXCompileCommand cmd = clang_CompileCommands_getCommand(cmds, 0);
    std::vector<std::string> args;
    const unsigned nargs = clang_CompileCommand_getNumArgs(cmd);
    for (unsigned i = 1; i < nargs; ++i) {  // skip compiler argv[0]
      std::string arg = ToStd(clang_CompileCommand_getArg(cmd, i));
      if (arg == "-o" || arg == "-c") {
        if (arg == "-o") ++i;  // drop the output path too
        continue;
      }
      if (arg == abs || arg == file) continue;
      args.push_back(std::move(arg));
    }
    std::vector<const char*> argv;
    argv.reserve(args.size());
    for (const std::string& a : args) argv.push_back(a.c_str());

    CXTranslationUnit tu = clang_parseTranslationUnit(
        index, abs.c_str(), argv.data(), static_cast<int>(argv.size()),
        nullptr, 0, CXTranslationUnit_None);
    clang_CompileCommands_dispose(cmds);
    if (tu == nullptr) {
      std::cerr << "kdlint: failed to parse " << file << "\n";
      continue;
    }

    std::vector<Finding> per_file;
    Ctx ctx{file, &opts, &per_file, tu};
    clang_visitChildren(clang_getTranslationUnitCursor(tu), Visit, &ctx);
    clang_disposeTranslationUnit(tu);

    // R6 and R0 are purely lexical (a `%` near a shard-named
    // identifier; a suppression comment with no reason), so clang mode
    // reuses the token rules rather than duplicating an AST walk;
    // AnalyzeSource applies suppressions itself, and re-applying them
    // below is idempotent.
    {
      std::string lex_source;
      if (ReadAll(file, lex_source)) {
        Options lexical = opts;
        lexical.rules.clear();
        for (const char* rule : {"R6", "R0"}) {
          if ((opts.rules.empty() || opts.rules.count(rule) > 0) &&
              RuleAppliesTo(opts, rule, file)) {
            lexical.rules.insert(rule);
          }
        }
        if (!lexical.rules.empty()) {
          std::vector<Finding> lex =
              AnalyzeSource(file, lex_source, "", lexical);
          per_file.insert(per_file.end(), lex.begin(), lex.end());
        }
      }
    }

    std::string source;
    if (ReadAll(file, source)) {
      const Suppressions sup = ParseSuppressions(source);
      for (Finding& f : per_file) {
        sup.Apply(f);
        if (!f.suppressed &&
            opts.baseline.count(f.file + ":" + std::to_string(f.line) + ":" +
                                f.rule) > 0) {
          f.suppressed = true;
          f.suppress_reason = "baseline";
        }
      }
    }
    std::stable_sort(per_file.begin(), per_file.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
    out.insert(out.end(), per_file.begin(), per_file.end());
  }

  clang_disposeIndex(index);
  clang_CompilationDatabase_dispose(db);
  return true;
}

}  // namespace kdlint

#endif  // KDLINT_HAVE_LIBCLANG
