// AST-accurate kdlint backend on the libclang C API, driven by the
// project's compile_commands.json. Only compiled when CMake finds
// clang-c/Index.h (see CMakeLists.txt); the token-mode fallback in
// rules.cc covers toolchains without libclang and is the mode the
// fixture tests always exercise.
//
// Headers and any file without a compile command fall back to the
// token analyzer, so one invocation always covers every input file.
#if defined(KDLINT_HAVE_LIBCLANG)

#include <clang-c/CXCompilationDatabase.h>
#include <clang-c/Index.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "kdlint.h"

namespace kdlint {
namespace {

std::string ToStd(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c != nullptr ? c : "";
  clang_disposeString(s);
  return out;
}

int LineOf(CXCursor cursor) {
  unsigned line = 0;
  clang_getExpansionLocation(clang_getCursorLocation(cursor), nullptr, &line,
                             nullptr, nullptr);
  return static_cast<int>(line);
}

bool InMainFile(CXCursor cursor) {
  return clang_Location_isFromMainFile(clang_getCursorLocation(cursor)) != 0;
}

const std::set<std::string>& BannedIdents() {
  static const std::set<std::string> kSet = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "random_device",  "gettimeofday", "clock_gettime",
      "localtime",      "localtime_r",  "gmtime",
      "mktime",         "getenv",       "setenv",
      "srand",          "rand",         "drand48",
      "random_shuffle", "sleep_for",    "sleep_until",
      "nanosleep",      "usleep",       "time"};
  return kSet;
}

const std::set<std::string>& OrderEscapingCalls() {
  static const std::set<std::string> kSet = {
      "ScheduleAt", "ScheduleAfter", "Schedule",    "Send",
      "Enqueue",    "EnqueueAfter",  "Create",      "Update",
      "Delete",     "Upsert",        "Remove",      "MarkInvalid",
      "DropInvalid", "Publish",      "Emit",        "Push",
      "Dispatch"};
  return kSet;
}

const std::set<std::string>& ScheduleEntryPoints() {
  static const std::set<std::string> kSet = {"ScheduleAt", "ScheduleAfter",
                                             "Schedule"};
  return kSet;
}

const std::set<std::string>& CacheMutators() {
  static const std::set<std::string> kSet = {"Upsert", "Remove", "MarkInvalid",
                                             "DropInvalid", "Clear"};
  return kSet;
}

std::string CanonicalTypeSpelling(CXCursor cursor) {
  return ToStd(clang_getTypeSpelling(
      clang_getCanonicalType(clang_getCursorType(cursor))));
}

// First template argument of a container type spelling, e.g.
// "std::map<kd::Pod *, int>" -> "kd::Pod *".
std::string FirstTemplateArg(const std::string& type) {
  const std::size_t open = type.find('<');
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < type.size(); ++i) {
    if (type[i] == '<') ++depth;
    if (type[i] == '>') --depth;
    if ((type[i] == ',' && depth == 1) || depth == 0) {
      return type.substr(open + 1, i - open - 1);
    }
  }
  return "";
}

bool IsAssociativeContainer(const std::string& type) {
  for (const char* name :
       {"std::map<", "std::set<", "std::multimap<", "std::multiset<",
        "std::unordered_map<", "std::unordered_set<",
        "std::unordered_multimap<", "std::unordered_multiset<",
        "std::priority_queue<"}) {
    if (type.find(name) != std::string::npos) return true;
  }
  return false;
}

struct Ctx {
  std::string file;
  const Options* opts;
  std::vector<Finding>* out;
  CXTranslationUnit tu;

  bool Want(const char* rule) const {
    return (opts->rules.empty() || opts->rules.count(rule) > 0) &&
           RuleAppliesTo(*opts, rule, file);
  }
  void Add(int line, const char* rule, std::string message) {
    out->push_back({file, line, rule, std::move(message), false, ""});
  }
};

// --- subtree scans used by R2/R4 -----------------------------------

struct SubtreeScan {
  bool unordered_range = false;
  std::string escape_call;
  int escape_line = 0;
  bool blanket_ref_lambda = false;
  int lambda_line = 0;
  CXTranslationUnit tu;
};

// First tokens of a lambda: `[ & ]` or `[ & ,` is a blanket by-ref
// capture default (libclang does not expose capture defaults in the C
// API, so we look at the spelling).
bool LambdaHasBlanketRef(CXTranslationUnit tu, CXCursor lambda) {
  CXToken* toks = nullptr;
  unsigned n = 0;
  clang_tokenize(tu, clang_getCursorExtent(lambda), &toks, &n);
  bool blanket = false;
  if (n >= 3 && ToStd(clang_getTokenSpelling(tu, toks[0])) == "[" &&
      ToStd(clang_getTokenSpelling(tu, toks[1])) == "&") {
    const std::string third = ToStd(clang_getTokenSpelling(tu, toks[2]));
    blanket = third == "]" || third == ",";
  }
  clang_disposeTokens(tu, toks, n);
  return blanket;
}

CXChildVisitResult ScanSubtree(CXCursor cursor, CXCursor, CXClientData data) {
  auto* scan = static_cast<SubtreeScan*>(data);
  const CXCursorKind kind = clang_getCursorKind(cursor);
  if (kind == CXCursor_CallExpr) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    if (OrderEscapingCalls().count(name) > 0 && scan->escape_call.empty()) {
      scan->escape_call = name;
      scan->escape_line = LineOf(cursor);
    }
  }
  if (kind == CXCursor_LambdaExpr && !scan->blanket_ref_lambda &&
      LambdaHasBlanketRef(scan->tu, cursor)) {
    scan->blanket_ref_lambda = true;
    scan->lambda_line = LineOf(cursor);
  }
  if (clang_getCursorKind(cursor) != CXCursor_LambdaExpr) {
    const std::string type = CanonicalTypeSpelling(cursor);
    if (type.find("unordered_") != std::string::npos) {
      scan->unordered_range = true;
    }
  }
  return CXChildVisit_Recurse;
}

// Base object of a member call, for R5 receiver typing.
struct FirstChild {
  CXCursor cursor = clang_getNullCursor();
};
CXChildVisitResult TakeFirstChild(CXCursor cursor, CXCursor,
                                  CXClientData data) {
  static_cast<FirstChild*>(data)->cursor = cursor;
  return CXChildVisit_Break;
}

CXChildVisitResult Visit(CXCursor cursor, CXCursor, CXClientData data) {
  auto* ctx = static_cast<Ctx*>(data);
  if (!InMainFile(cursor)) return CXChildVisit_Continue;
  const CXCursorKind kind = clang_getCursorKind(cursor);

  if (ctx->Want("R1") && (kind == CXCursor_DeclRefExpr ||
                          kind == CXCursor_MemberRefExpr ||
                          kind == CXCursor_TypeRef)) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    // Strip any "class "/"struct " prefix a TypeRef spelling carries.
    const std::size_t space = name.rfind(' ');
    const std::string bare =
        space == std::string::npos ? name : name.substr(space + 1);
    if (BannedIdents().count(bare) > 0) {
      // Only flag `time` for the libc function, not arbitrary members.
      bool flag = bare != "time" || kind == CXCursor_DeclRefExpr;
      if (flag) {
        ctx->Add(LineOf(cursor), "R1",
                 "nondeterministic source '" + bare +
                     "' (wall clock / ambient entropy) - product code "
                     "must use sim::Engine::now() and kd::Rng so runs "
                     "stay bit-reproducible");
      }
    }
  }

  if (ctx->Want("R2") && kind == CXCursor_CXXForRangeStmt) {
    SubtreeScan scan;
    scan.tu = ctx->tu;
    clang_visitChildren(cursor, ScanSubtree, &scan);
    if (scan.unordered_range && !scan.escape_call.empty()) {
      ctx->Add(LineOf(cursor), "R2",
               "iteration over an unordered container calls '" +
                   scan.escape_call +
                   "' - hash-table order escapes into event/wire order; "
                   "iterate an ordered container or a sorted snapshot");
    }
  }

  if ((kind == CXCursor_VarDecl || kind == CXCursor_FieldDecl) &&
      ctx->Want("R3")) {
    const std::string type = CanonicalTypeSpelling(cursor);
    if (IsAssociativeContainer(type)) {
      std::string arg = FirstTemplateArg(type);
      while (!arg.empty() && arg.back() == ' ') arg.pop_back();
      if (!arg.empty() && arg.back() == '*') {
        ctx->Add(LineOf(cursor), "R3",
                 "container '" + ToStd(clang_getCursorSpelling(cursor)) +
                     "' is keyed by a pointer; pointer values differ "
                     "across runs, so any order or hash derived from them "
                     "is nondeterministic - key by a stable id instead");
      }
    }
  }

  if (kind == CXCursor_CallExpr) {
    const std::string name = ToStd(clang_getCursorSpelling(cursor));
    if (ctx->Want("R4") && ScheduleEntryPoints().count(name) > 0) {
      SubtreeScan scan;
      scan.tu = ctx->tu;
      clang_visitChildren(cursor, ScanSubtree, &scan);
      if (scan.blanket_ref_lambda) {
        ctx->Add(scan.lambda_line, "R4",
                 "closure passed to '" + name +
                     "' captures by blanket reference [&] - locals it "
                     "captures are dead by the time the event fires; "
                     "capture explicitly by value (guard re-entrancy "
                     "with an epoch or EventId)");
      }
    }
    if (ctx->Want("R5") && CacheMutators().count(name) > 0) {
      FirstChild callee;
      clang_visitChildren(cursor, TakeFirstChild, &callee);
      if (clang_getCursorKind(callee.cursor) == CXCursor_MemberRefExpr) {
        FirstChild base;
        clang_visitChildren(callee.cursor, TakeFirstChild, &base);
        const std::string type = CanonicalTypeSpelling(base.cursor);
        if (type.find("ObjectCache") != std::string::npos) {
          ctx->Add(LineOf(cursor), "R5",
                   "policy class mutates an ObjectCache via '" + name +
                       "' - object mutations must flow through "
                       "runtime::ApiClient or a harness seam (annotate "
                       "deliberate ingress/write-through paths with "
                       "kdlint: allow(R5))");
        }
      }
    }
  }
  return CXChildVisit_Recurse;
}

bool ReadAll(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

bool RunClangMode(const std::vector<std::string>& files,
                  const std::string& compile_commands_dir,
                  const Options& opts, std::vector<Finding>& out) {
  std::string dir = compile_commands_dir;
  if (dir.empty()) dir = "build";
  CXCompilationDatabase_Error err = CXCompilationDatabase_NoError;
  CXCompilationDatabase db =
      clang_CompilationDatabase_fromDirectory(dir.c_str(), &err);
  if (err != CXCompilationDatabase_NoError) {
    std::cerr << "kdlint: cannot load compile_commands.json from '" << dir
              << "' (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
    return false;
  }
  CXIndex index = clang_createIndex(/*excludeDeclsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);

  for (const std::string& file : files) {
    const std::string abs =
        std::filesystem::absolute(file).generic_string();
    CXCompileCommands cmds =
        clang_CompilationDatabase_getCompileCommands(db, abs.c_str());
    const unsigned ncmds = clang_CompileCommands_getSize(cmds);
    if (ncmds == 0) {
      // Headers and un-built files: token fallback keeps coverage.
      clang_CompileCommands_dispose(cmds);
      std::string source;
      if (ReadAll(file, source)) {
        std::vector<Finding> per_file = AnalyzeSource(file, source, "", opts);
        out.insert(out.end(), per_file.begin(), per_file.end());
      }
      continue;
    }
    CXCompileCommand cmd = clang_CompileCommands_getCommand(cmds, 0);
    std::vector<std::string> args;
    const unsigned nargs = clang_CompileCommand_getNumArgs(cmd);
    for (unsigned i = 1; i < nargs; ++i) {  // skip compiler argv[0]
      std::string arg = ToStd(clang_CompileCommand_getArg(cmd, i));
      if (arg == "-o" || arg == "-c") {
        if (arg == "-o") ++i;  // drop the output path too
        continue;
      }
      if (arg == abs || arg == file) continue;
      args.push_back(std::move(arg));
    }
    std::vector<const char*> argv;
    argv.reserve(args.size());
    for (const std::string& a : args) argv.push_back(a.c_str());

    CXTranslationUnit tu = clang_parseTranslationUnit(
        index, abs.c_str(), argv.data(), static_cast<int>(argv.size()),
        nullptr, 0, CXTranslationUnit_None);
    clang_CompileCommands_dispose(cmds);
    if (tu == nullptr) {
      std::cerr << "kdlint: failed to parse " << file << "\n";
      continue;
    }

    std::vector<Finding> per_file;
    Ctx ctx{file, &opts, &per_file, tu};
    clang_visitChildren(clang_getTranslationUnitCursor(tu), Visit, &ctx);
    clang_disposeTranslationUnit(tu);

    // R6 is purely lexical (a `%` near a shard-named identifier), so
    // clang mode reuses the token rule rather than duplicating an AST
    // walk; AnalyzeSource applies suppressions itself, and re-applying
    // them below is idempotent.
    if ((opts.rules.empty() || opts.rules.count("R6") > 0) &&
        RuleAppliesTo(opts, "R6", file)) {
      std::string r6_source;
      if (ReadAll(file, r6_source)) {
        Options r6_only = opts;
        r6_only.rules = {"R6"};
        std::vector<Finding> r6 =
            AnalyzeSource(file, r6_source, "", r6_only);
        per_file.insert(per_file.end(), r6.begin(), r6.end());
      }
    }

    std::string source;
    if (ReadAll(file, source)) {
      const Suppressions sup = ParseSuppressions(source);
      for (Finding& f : per_file) {
        sup.Apply(f);
        if (!f.suppressed &&
            opts.baseline.count(f.file + ":" + std::to_string(f.line) + ":" +
                                f.rule) > 0) {
          f.suppressed = true;
          f.suppress_reason = "baseline";
        }
      }
    }
    std::stable_sort(per_file.begin(), per_file.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
    out.insert(out.end(), per_file.begin(), per_file.end());
  }

  clang_disposeIndex(index);
  clang_CompilationDatabase_dispose(db);
  return true;
}

}  // namespace kdlint

#endif  // KDLINT_HAVE_LIBCLANG
