// kdlint — repo-specific determinism & protocol lint for KubeDirect.
//
// The simulator's correctness oracle is bit-determinism (the replay
// fingerprints in tests/determinism_test.cc). These rules statically
// forbid the bug classes that break it, plus the narrow-waist API
// contract from the paper (§3.1). See LINT.md for the full rationale.
//
//   R0  suppression comments must carry a reason (audit hygiene)
//   R1  no wall clock / ambient entropy in product code
//   R2  unordered-container iteration must not feed event schedules
//   R3  no pointer values as container keys / ordering criteria
//   R4  closures passed to sim::Engine::Schedule* must not capture [&]
//       or smuggle `this` through a blanket [=] copy default
//   R5  controller policy classes never mutate ObjectCache directly
//   R6  shard routing goes through ShardRouter (no hand-rolled modulo)
//   R7  lane ownership: code in a KD_LANE_OWNED class may not reach
//       another lane's state except through a KD_LANE_SEAM conduit
//   R8  no raw pointer/reference to another lane's KD_LANE_OWNED state
//       stored as a member or captured into a scheduled closure
//   R9  no raw threading primitives (std::thread/mutex/atomics)
//       outside src/sim — the engine owns all parallelism; product
//       code uses sim::SeamLock for sanctioned commutative seams
//
// R7/R8 read the ownership model declared in src/common/lane.h; the
// driver harvests every KD_LANE_OWNED/KD_LANE_SEAM annotation across
// all input files (and sibling headers) into Options before analysis,
// which is what makes the pass cross-translation-unit in both modes.
//
// Suppressions: `// kdlint: allow(R2) reason` on the offending line or
// the line directly above; `// kdlint: allow-file(R1) reason` anywhere
// in the file for a file-wide waiver. The reason is mandatory: an
// empty one is rejected (the suppression does not take effect) and
// reported as R0.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace kdlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     // "R1".."R6"
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  // inline reason text or "baseline"
};

struct Options {
  // Rules to run (empty = all).
  std::set<std::string> rules;
  // With repo scoping on, each rule only applies to its home layers
  // (R1-R4: src/ outside src/sim/ for R1; R5: controllers/ and faas/).
  // Off (the default) every rule runs on every input file — that is
  // what the fixture tests exercise.
  bool repo_scope = false;
  // Report suppressed findings too (they never affect the exit code).
  bool show_suppressed = false;
  // Baseline entries ("file:line:rule") that demote matching findings
  // to suppressed. Transitional tool only; see LINT.md.
  std::set<std::string> baseline;
  // Cross-TU lane-ownership index for R7/R8, harvested by the driver
  // from every input file (plus sibling headers) before analysis so
  // both backends see the same model regardless of include graphs.
  std::map<std::string, std::string> lane_of;  // class name -> lane
  std::set<std::string> seam_types;            // KD_LANE_SEAM classes
  // Accessor functions returning a lane-owned type by ref/pointer
  // (e.g. `Autoscaler& autoscaler()`): name -> lane of the returned
  // class. Lets R7 see cross-lane reach through getter chains.
  std::map<std::string, std::string> accessor_lane;
};

// Per-file suppression state parsed from raw source lines.
struct Suppressions {
  // line -> rules allowed on that line (an entry covering line N also
  // covers findings reported on line N when the comment sits on N-1).
  std::map<int, std::set<std::string>> by_line;
  std::map<int, std::string> reason_by_line;
  std::set<std::string> whole_file;
  std::string whole_file_reason;
  // Suppression comments with an empty reason: line -> the rule list
  // text. They are rejected (no suppression effect) and reported as
  // R0 so the exception inventory stays auditable.
  std::map<int, std::string> missing_reason;

  // Applies suppression state to `f`, setting suppressed/reason.
  void Apply(Finding& f) const;
};

Suppressions ParseSuppressions(const std::string& source);

// Harvests KD_LANE_OWNED/KD_LANE_SEAM class annotations and
// lane-owned accessor signatures from one source file into the
// options' cross-TU lane index. The driver calls this over every
// input file (and sibling header) before any analysis runs.
void HarvestLaneIndex(const std::string& source, Options& opts);

// Runs all (selected) token-mode rules over one file. `sibling_header`
// is the text of the paired .h for a .cc input ("" if none): R5 needs
// it to learn member declarations that live in the header.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& source,
                                   const std::string& sibling_header,
                                   const Options& opts);

// True if `rule` applies to `path` under --repo-scope (always true
// when repo scoping is off).
bool RuleAppliesTo(const Options& opts, const std::string& rule,
                   const std::string& path);

// JSON-escapes a string body (no surrounding quotes).
std::string JsonEscape(const std::string& s);

// One finding as a single-line JSON object (stable field order; the
// test suite and CI log scrapers rely on one-object-per-line).
std::string ToJson(const Finding& f);

// All findings as a SARIF 2.1.0 document (GitHub code scanning).
// Suppressed findings are emitted with an inSource suppression so the
// exception inventory shows up in the scanning UI too.
std::string ToSarif(const std::vector<Finding>& findings);

#if defined(KDLINT_HAVE_LIBCLANG)
// AST-accurate backend over compile_commands.json. Returns false (with
// a message on stderr) if the compilation database cannot be loaded.
bool RunClangMode(const std::vector<std::string>& files,
                  const std::string& compile_commands_dir,
                  const Options& opts, std::vector<Finding>& out);
#endif

}  // namespace kdlint
