// kdlint — repo-specific determinism & protocol lint for KubeDirect.
//
// The simulator's correctness oracle is bit-determinism (the replay
// fingerprints in tests/determinism_test.cc). These rules statically
// forbid the bug classes that break it, plus the narrow-waist API
// contract from the paper (§3.1). See LINT.md for the full rationale.
//
//   R1  no wall clock / ambient entropy in product code
//   R2  unordered-container iteration must not feed event schedules
//   R3  no pointer values as container keys / ordering criteria
//   R4  closures passed to sim::Engine::Schedule* must not capture [&]
//   R5  controller policy classes never mutate ObjectCache directly
//   R6  shard routing goes through ShardRouter (no hand-rolled modulo)
//
// Suppressions: `// kdlint: allow(R2) reason` on the offending line or
// the line directly above; `// kdlint: allow-file(R1) reason` anywhere
// in the file for a file-wide waiver.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace kdlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     // "R1".."R6"
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  // inline reason text or "baseline"
};

struct Options {
  // Rules to run (empty = all).
  std::set<std::string> rules;
  // With repo scoping on, each rule only applies to its home layers
  // (R1-R4: src/ outside src/sim/ for R1; R5: controllers/ and faas/).
  // Off (the default) every rule runs on every input file — that is
  // what the fixture tests exercise.
  bool repo_scope = false;
  // Report suppressed findings too (they never affect the exit code).
  bool show_suppressed = false;
  // Baseline entries ("file:line:rule") that demote matching findings
  // to suppressed. Transitional tool only; see LINT.md.
  std::set<std::string> baseline;
};

// Per-file suppression state parsed from raw source lines.
struct Suppressions {
  // line -> rules allowed on that line (an entry covering line N also
  // covers findings reported on line N when the comment sits on N-1).
  std::map<int, std::set<std::string>> by_line;
  std::map<int, std::string> reason_by_line;
  std::set<std::string> whole_file;
  std::string whole_file_reason;

  // Applies suppression state to `f`, setting suppressed/reason.
  void Apply(Finding& f) const;
};

Suppressions ParseSuppressions(const std::string& source);

// Runs all (selected) token-mode rules over one file. `sibling_header`
// is the text of the paired .h for a .cc input ("" if none): R5 needs
// it to learn member declarations that live in the header.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& source,
                                   const std::string& sibling_header,
                                   const Options& opts);

// True if `rule` applies to `path` under --repo-scope (always true
// when repo scoping is off).
bool RuleAppliesTo(const Options& opts, const std::string& rule,
                   const std::string& path);

// JSON-escapes a string body (no surrounding quotes).
std::string JsonEscape(const std::string& s);

// One finding as a single-line JSON object (stable field order; the
// test suite and CI log scrapers rely on one-object-per-line).
std::string ToJson(const Finding& f);

#if defined(KDLINT_HAVE_LIBCLANG)
// AST-accurate backend over compile_commands.json. Returns false (with
// a message on stderr) if the compilation database cannot be loaded.
bool RunClangMode(const std::vector<std::string>& files,
                  const std::string& compile_commands_dir,
                  const Options& opts, std::vector<Finding>& out);
#endif

}  // namespace kdlint
