// Token-mode implementations of R1-R5 plus suppression handling.
//
// The analyses are deliberately structural rather than semantic: each
// rule keys off token patterns that are unambiguous in this codebase's
// idiom (see LINT.md for what each rule intentionally does and does
// not catch). Where a rule needs declaration context that lives in a
// paired header (R2/R5 receiver types for members of a .cc's class),
// the caller passes the sibling header text and we harvest
// declarations from it without emitting findings for it — the header
// is swept as its own input file.
#include "kdlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "lexer.h"

namespace kdlint {
namespace {

const std::set<std::string>& UnorderedContainers() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::set<std::string>& OrderedContainers() {
  static const std::set<std::string> kSet = {"map", "set", "multimap",
                                             "multiset", "priority_queue"};
  return kSet;
}

// R1: ambient-nondeterminism sources. Each of these injects host state
// (wall clock, entropy, environment) that differs run to run.
const std::set<std::string>& BannedIdents() {
  static const std::set<std::string> kSet = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "random_device",  "gettimeofday", "clock_gettime",
      "localtime",      "localtime_r",  "gmtime",
      "mktime",         "getenv",       "setenv",
      "srand",          "rand",         "drand48",
      "random_shuffle", "sleep_for",    "sleep_until",
      "nanosleep",      "usleep"};
  return kSet;
}

// R2/R4: calls through which iteration order or a closure escapes into
// the event schedule or onto the wire.
const std::set<std::string>& OrderEscapingCalls() {
  static const std::set<std::string> kSet = {
      "ScheduleAt", "ScheduleAfter", "Schedule",    "Send",
      "Enqueue",    "EnqueueAfter",  "Create",      "Update",
      "Delete",     "Upsert",        "Remove",      "MarkInvalid",
      "DropInvalid", "Publish",      "Emit",        "Push",
      "Dispatch"};
  return kSet;
}

const std::set<std::string>& ScheduleEntryPoints() {
  static const std::set<std::string> kSet = {"ScheduleAt", "ScheduleAfter",
                                             "Schedule"};
  return kSet;
}

// R9: raw threading primitives. Parallel execution is the engine's
// job (src/sim, PARALLEL MODE): product code runs single-lane between
// barrier epochs, so a thread, lock, or atomic of its own would race
// the deterministic schedule the engine replays. The sanctioned
// wrapper for the few commutative cross-lane seams is sim::SeamLock
// (src/sim/seam_lock.h). `thread` and `atomic` are common enough
// words that only their std-qualified / template forms are flagged
// (see RunR9).
const std::set<std::string>& BannedThreadingIdents() {
  static const std::set<std::string> kSet = {
      "jthread",          "mutex",
      "recursive_mutex",  "timed_mutex",
      "recursive_timed_mutex",
      "shared_mutex",     "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic_flag",      "atomic_thread_fence",
      "atomic_signal_fence",
      "lock_guard",       "unique_lock",
      "scoped_lock",      "shared_lock",
      "call_once",        "once_flag",
      "memory_order_relaxed", "memory_order_acquire",
      "memory_order_release", "memory_order_acq_rel",
      "memory_order_seq_cst"};
  return kSet;
}

// R5: ObjectCache mutators a policy class must not call directly.
const std::set<std::string>& CacheMutators() {
  static const std::set<std::string> kSet = {"Upsert", "Remove", "MarkInvalid",
                                             "DropInvalid", "Clear"};
  return kSet;
}

bool ContainsNoCase(const std::string& haystack, const std::string& needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::tolower(static_cast<unsigned char>(a)) ==
                                 std::tolower(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

using Tokens = std::vector<Token>;

bool Is(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

// Index of the matching closer for the opener at `i`, or t.size().
std::size_t MatchForward(const Tokens& t, std::size_t i, const char* open,
                         const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

// Matches the template argument list opened by `<` at index `i`.
// Counts only angle tokens; `>>` lexes as two `>` so nested closers
// work. `->` inside a template argument list would miscount, but no
// type expression in this codebase (or any sane one) contains one.
std::size_t MatchAngle(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">" && --depth == 0) return j;
    // A statement terminator inside an "argument list" means this `<`
    // was a comparison after all; bail out.
    if (t[j].text == ";" || t[j].text == "{") return t.size();
  }
  return t.size();
}

// Declaration facts harvested from one token stream.
struct Decls {
  std::set<std::string> unordered_vars;  // names with unordered_* type
  std::set<std::string> cache_vars;      // names with ObjectCache type
};

// Scans container/ObjectCache declarations. Emits R3 findings into
// `out` when it is non-null (null for sibling-header harvesting).
void ScanDecls(const std::string& path, const Tokens& t, Decls& decls,
               std::vector<Finding>* out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool unordered = UnorderedContainers().count(t[i].text) > 0;
    const bool ordered = OrderedContainers().count(t[i].text) > 0;
    if (unordered || ordered) {
      if (!Is(t, i + 1, "<")) continue;
      const std::size_t close = MatchAngle(t, i + 1);
      if (close == t.size()) continue;
      // First template argument: tokens at angle depth 1 up to the
      // first comma (or the closer, for sets).
      std::size_t arg_end = close;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].kind != TokKind::kPunct) continue;
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        if (t[j].text == "," && depth == 1) {
          arg_end = j;
          break;
        }
      }
      if (out != nullptr && arg_end > i + 2 && Is(t, arg_end - 1, "*")) {
        out->push_back(
            {path, t[i].line, "R3",
             "container '" + t[i].text +
                 "' is keyed by a pointer; pointer values differ across "
                 "runs, so any order or hash derived from them is "
                 "nondeterministic - key by a stable id instead",
             false,
             ""});
      }
      // Variable name, if this is a declaration: skip cv/ref tokens
      // after the closing `>`.
      std::size_t j = close + 1;
      while (j < t.size() &&
             (Is(t, j, "&") || Is(t, j, "*") || t[j].text == "const")) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdent && unordered) {
        decls.unordered_vars.insert(t[j].text);
      }
      i = close;
      continue;
    }
    if (t[i].text == "ObjectCache") {
      std::size_t j = i + 1;
      while (j < t.size() &&
             (Is(t, j, "&") || Is(t, j, "*") || t[j].text == "const")) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        decls.cache_vars.insert(t[j].text);
      }
    }
  }
}

// R1 over one token stream.
void RunR1(const std::string& path, const Tokens& t,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    bool hit = BannedIdents().count(id) > 0;
    // `time` is too common a word to ban outright; flag the function
    // call forms `std::time(...)` / `::time(...)`.
    if (!hit && id == "time" && Is(t, i + 1, "(") && i >= 2 &&
        Is(t, i - 1, ":") && Is(t, i - 2, ":")) {
      hit = true;
    }
    if (!hit) continue;
    // Member accesses (`foo.rand()`) are somebody else's rand.
    if (i >= 1 && (Is(t, i - 1, ".") ||
                   (i >= 2 && Is(t, i - 1, ">") && Is(t, i - 2, "-")))) {
      continue;
    }
    out.push_back({path, t[i].line, "R1",
                   "nondeterministic source '" + id +
                       "' (wall clock / ambient entropy) - product code "
                       "must use sim::Engine::now() and kd::Rng so runs "
                       "stay bit-reproducible",
                   false,
                   ""});
  }
}

// Returns the index one past the end of the statement or block that
// starts at `i` (the loop body).
std::size_t BodyEnd(const Tokens& t, std::size_t i) {
  if (Is(t, i, "{")) {
    const std::size_t close = MatchForward(t, i, "{", "}");
    return close == t.size() ? close : close + 1;
  }
  int paren = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "(") ++paren;
    if (t[j].text == ")") --paren;
    if (t[j].text == ";" && paren == 0) return j + 1;
  }
  return t.size();
}

// R2 over one token stream, using unordered var names from `decls`.
void RunR2(const std::string& path, const Tokens& t, const Decls& decls,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].kind == TokKind::kIdent && t[i].text == "for" &&
          Is(t, i + 1, "("))) {
      continue;
    }
    const std::size_t close = MatchForward(t, i + 1, "(", ")");
    if (close == t.size()) continue;
    // Does the loop header iterate an unordered container? Range-for:
    // an unordered name (or unordered_* type of a temporary) appears
    // after the depth-1 `:`. Iterator loop: `x.begin()`/`x.cbegin()`
    // with x unordered. Checking the whole header for either pattern
    // keeps this robust to both forms.
    std::string culprit;
    for (std::size_t j = i + 2; j < close && culprit.empty(); ++j) {
      if (t[j].kind != TokKind::kIdent) continue;
      if (decls.unordered_vars.count(t[j].text) > 0) culprit = t[j].text;
      if (UnorderedContainers().count(t[j].text) > 0) culprit = t[j].text;
    }
    if (culprit.empty()) continue;
    const std::size_t body_end = BodyEnd(t, close + 1);
    for (std::size_t j = close + 1; j < body_end; ++j) {
      if (t[j].kind == TokKind::kIdent &&
          OrderEscapingCalls().count(t[j].text) > 0 && Is(t, j + 1, "(")) {
        out.push_back(
            {path, t[i].line, "R2",
             "iteration over unordered container '" + culprit +
                 "' calls '" + t[j].text +
                 "' - hash-table order escapes into event/wire order; "
                 "iterate an ordered container or a sorted snapshot",
             false,
             ""});
        break;
      }
    }
  }
}

// Returns one past the end of the lambda whose introducer `[` closes
// at `cap_end`: skips the optional parameter list and specifiers, then
// the `{...}` body. Returns cap_end + 1 if no body is found (not a
// lambda after all, e.g. a subscript).
std::size_t LambdaEnd(const Tokens& t, std::size_t cap_end) {
  std::size_t b = cap_end + 1;
  if (Is(t, b, "(")) {
    const std::size_t pc = MatchForward(t, b, "(", ")");
    if (pc == t.size()) return cap_end + 1;
    b = pc + 1;
  }
  // Specifiers / trailing return type up to the body.
  while (b < t.size() && !Is(t, b, "{") && !Is(t, b, ";") &&
         !Is(t, b, ")") && !Is(t, b, ",")) {
    ++b;
  }
  if (!Is(t, b, "{")) return cap_end + 1;
  const std::size_t close = MatchForward(t, b, "{", "}");
  return close == t.size() ? close : close + 1;
}

// R4 over one token stream. Flags blanket [&] capture defaults, and
// blanket [=] defaults whose body touches `this` state (the copy
// default quietly captures the raw `this` pointer, which is the same
// lifetime hazard as [&] once the owner can crash/restart before the
// event fires). Schedule* reached through members or aliases
// (`engine_->ScheduleAt`, `auto& e = engine(); e.ScheduleAt`) match
// the same call pattern, so aliasing cannot dodge the rule.
void RunR4(const std::string& path, const Tokens& t,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].kind == TokKind::kIdent &&
          ScheduleEntryPoints().count(t[i].text) > 0 && Is(t, i + 1, "("))) {
      continue;
    }
    const std::size_t close = MatchForward(t, i + 1, "(", ")");
    for (std::size_t j = i + 2; j < close; ++j) {
      // Lambda introducer: `[` in argument position.
      if (!Is(t, j, "[") || !(Is(t, j - 1, "(") || Is(t, j - 1, ","))) {
        continue;
      }
      const std::size_t cap_end = MatchForward(t, j, "[", "]");
      for (std::size_t k = j + 1; k < cap_end; ++k) {
        // A blanket `&` capture-default: `&` directly followed by `]`
        // or `,` (explicit `&name` captures are fine).
        if (Is(t, k, "&") && (k + 1 == cap_end || Is(t, k + 1, ","))) {
          out.push_back(
              {path, t[k].line, "R4",
               "closure passed to '" + t[i].text +
                   "' captures by blanket reference [&] - locals it "
                   "captures are dead by the time the event fires; "
                   "capture explicitly by value (guard re-entrancy with "
                   "an epoch or EventId)",
               false,
               ""});
          break;
        }
      }
      // A blanket `=` capture-default (grammar puts it first) whose
      // body reaches `this` — explicitly or through a member (house
      // style: trailing-underscore names) — smuggles the raw `this`
      // pointer into the deferred closure.
      if (Is(t, j + 1, "=") && (j + 2 == cap_end || Is(t, j + 2, ","))) {
        const std::size_t lam_end = LambdaEnd(t, cap_end);
        for (std::size_t k = cap_end + 1; k < lam_end; ++k) {
          if (t[k].kind != TokKind::kIdent) continue;
          const bool member_style =
              t[k].text.size() > 1 && t[k].text.back() == '_';
          if (t[k].text != "this" && !member_style) continue;
          // `x.member_` is somebody else's member, not ours.
          if (member_style && k >= 1 &&
              (Is(t, k - 1, ".") || Is(t, k - 1, ">"))) {
            continue;
          }
          out.push_back(
              {path, t[j + 1].line, "R4",
               "closure passed to '" + t[i].text +
                   "' uses a blanket [=] capture that implicitly copies "
                   "the raw `this` pointer (body touches '" + t[k].text +
                   "') - capture `this` explicitly and guard re-entrancy "
                   "with an epoch or EventId",
               false,
               ""});
          break;
        }
      }
    }
  }
}

// R5 over one token stream, using cache var names from `decls`.
void RunR5(const std::string& path, const Tokens& t, const Decls& decls,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool known_cache = decls.cache_vars.count(t[i].text) > 0;
    // Fallback for receivers whose declaration we cannot see (e.g. a
    // member of a base class): anything *named* like a cache.
    const bool named_cache = ContainsNoCase(t[i].text, "cache");
    if (!known_cache && !named_cache) continue;
    std::size_t j = i + 1;
    if (Is(t, j, ".")) {
      ++j;
    } else if (Is(t, j, "-") && Is(t, j + 1, ">")) {
      j += 2;
    } else {
      continue;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        CacheMutators().count(t[j].text) > 0 && Is(t, j + 1, "(")) {
      out.push_back(
          {path, t[j].line, "R5",
           "policy class mutates ObjectCache '" + t[i].text + "' via '" +
               t[j].text +
               "' - object mutations must flow through runtime::ApiClient "
               "or a harness seam (annotate deliberate ingress/"
               "write-through paths with kdlint: allow(R5))",
           false,
           ""});
    }
  }
}

// R6 over one token stream: shard routing must go through ShardRouter.
// A `%` with a shard-named identifier in arm's reach is hand-rolled
// keyspace partitioning (`hash % num_shards`, `shard = h % S`); such
// arithmetic outside src/apiserver silently diverges from the router's
// mapping the moment its hash or clamping changes, so every other
// layer must ask the router instead. Purely lexical on purpose: the
// rule needs no types, only the operator and a nearby name.
void RunR6(const std::string& path, const Tokens& t,
           std::vector<Finding>& out) {
  constexpr std::size_t kWindow = 4;  // tokens on either side of `%`
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || t[i].text != "%") continue;
    const std::size_t lo = i > kWindow ? i - kWindow : 0;
    const std::size_t hi = std::min(t.size(), i + kWindow + 1);
    std::string culprit;
    for (std::size_t j = lo; j < hi && culprit.empty(); ++j) {
      if (t[j].kind == TokKind::kIdent &&
          ContainsNoCase(t[j].text, "shard")) {
        culprit = t[j].text;
      }
    }
    if (culprit.empty()) continue;
    out.push_back({path, t[i].line, "R6",
                   "shard arithmetic on '" + culprit +
                       "' - the key->shard mapping must go through "
                       "apiserver::ShardRouter so every layer agrees on "
                       "the partitioning (and S=1 stays hash-free)",
                   false,
                   ""});
  }
}

// R9 over one token stream: no raw threading primitives outside the
// engine. Most of the banned names (mutex, lock_guard, once_flag...)
// are unambiguous; `thread` and `atomic` are ordinary words, so they
// are flagged only as `std::thread` / `std::atomic` / `atomic<...>`.
// Member accesses (`seam.mutex()`) name somebody else's API and stay
// quiet, mirroring R1.
void RunR9(const std::string& path, const Tokens& t,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    bool hit = BannedThreadingIdents().count(id) > 0;
    if (!hit && (id == "thread" || id == "atomic")) {
      const bool std_qualified = i >= 3 && Is(t, i - 1, ":") &&
                                 Is(t, i - 2, ":") && Is(t, i - 3, "std");
      hit = std_qualified || (id == "atomic" && Is(t, i + 1, "<"));
    }
    if (!hit) continue;
    if (i >= 1 && (Is(t, i - 1, ".") ||
                   (i >= 2 && Is(t, i - 1, ">") && Is(t, i - 2, "-")))) {
      continue;
    }
    out.push_back({path, t[i].line, "R9",
                   "raw threading primitive '" + id +
                       "' - parallelism is the engine's job (src/sim); "
                       "product code runs single-lane between barrier "
                       "epochs and must use sim::SeamLock for the "
                       "sanctioned commutative seams",
                   false,
                   ""});
  }
}

// --- R7/R8: lane-ownership analysis --------------------------------
//
// The ownership model is declared with KD_LANE_OWNED/KD_LANE_SEAM
// (src/common/lane.h) and harvested across every input file into
// Options::lane_of / seam_types / accessor_lane by the driver, which
// is what makes the pass cross-translation-unit: a .cc only mentions
// e.g. `Autoscaler&`, but the annotation lives in autoscaler.h.
//
// Within a *lane region* — the body of a KD_LANE_OWNED class or an
// out-of-line member definition of one — the rules check the reach
// graph from that lane's event handlers to mutable state:
//   R7: a member call through a handle (or accessor chain) whose type
//       is owned by a different lane reaches foreign state directly;
//       sanctioned seams are exempt (they are not lane-owned).
//   R8: a raw pointer/reference member of a foreign-owned type, or a
//       foreign handle mentioned inside a closure passed to
//       Schedule*, stores cross-lane reach across events — the escape
//       that would defeat any future lane barrier.
// Instance granularity (this kubelet vs. that kubelet) is the runtime
// lane checker's job (src/sim/lane_checker.h); the static pass proves
// inter-component isolation.

// A token span owned by one lane.
struct LaneRegion {
  std::size_t begin = 0;  // index of the opening `{`
  std::size_t end = 0;    // index of the matching `}`
  std::string lane;
  std::string cls;
  bool class_body = false;  // true for class bodies, false for
                            // out-of-line member definitions
};

// Collects lane regions in one token stream: annotated class bodies
// plus out-of-line `Name::member(...) { ... }` definitions for any
// Name in the lane index.
std::vector<LaneRegion> FindLaneRegions(const Tokens& t,
                                        const Options& opts) {
  std::vector<LaneRegion> regions;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    // Class bodies. The annotation macro may sit between the keyword
    // and the name; the name lookup is what decides (the annotation
    // often lives in the header while the .cc re-opens nothing).
    if (t[i].text == "class" || t[i].text == "struct") {
      std::size_t j = i + 1;
      if (Is(t, j, "KD_LANE_OWNED") && Is(t, j + 1, "(")) {
        const std::size_t pc = MatchForward(t, j + 1, "(", ")");
        if (pc == t.size()) continue;
        j = pc + 1;
      } else if (Is(t, j, "KD_LANE_SEAM")) {
        ++j;
      }
      if (j >= t.size() || t[j].kind != TokKind::kIdent) continue;
      const auto it = opts.lane_of.find(t[j].text);
      if (it == opts.lane_of.end()) continue;
      std::size_t k = j + 1;
      while (k < t.size() && !Is(t, k, "{") && !Is(t, k, ";")) ++k;
      if (!Is(t, k, "{")) continue;  // forward declaration
      const std::size_t close = MatchForward(t, k, "{", "}");
      if (close == t.size()) continue;
      regions.push_back({k, close, it->second, t[j].text, true});
      continue;
    }
    // Out-of-line members: `Name :: member ( ... ) ... { ... }`.
    const auto it = opts.lane_of.find(t[i].text);
    if (it == opts.lane_of.end()) continue;
    if (!(Is(t, i + 1, ":") && Is(t, i + 2, ":"))) continue;
    std::size_t p = i + 3;
    // Scan a short window for the parameter list; `Name::kConstant`
    // or nested qualifiers fall out at `;`/`{` or the window edge.
    const std::size_t window = std::min(t.size(), i + 9);
    while (p < window && !Is(t, p, "(") && !Is(t, p, ";") &&
           !Is(t, p, "{")) {
      ++p;
    }
    if (!Is(t, p, "(")) continue;
    const std::size_t pc = MatchForward(t, p, "(", ")");
    if (pc == t.size()) continue;
    // Skip specifiers and a ctor init list up to the body. Init-list
    // initializers carry their own parens; jump over them so their
    // commas/braces cannot derail the scan.
    std::size_t b = pc + 1;
    while (b < t.size() && !Is(t, b, "{") && !Is(t, b, ";")) {
      if (Is(t, b, "(")) {
        b = MatchForward(t, b, "(", ")");
        if (b == t.size()) break;
      }
      ++b;
    }
    if (b >= t.size() || !Is(t, b, "{")) continue;
    const std::size_t close = MatchForward(t, b, "{", "}");
    if (close == t.size()) continue;
    regions.push_back({b, close, it->second, t[i].text, false});
  }
  return regions;
}

// The innermost lane region containing token index `i` (nullptr if
// none — driver/assembly code carries no lane).
const LaneRegion* RegionAt(const std::vector<LaneRegion>& regions,
                           std::size_t i) {
  const LaneRegion* best = nullptr;
  for (const LaneRegion& r : regions) {
    if (i <= r.begin || i >= r.end) continue;
    if (best == nullptr || r.begin > best->begin) best = &r;
  }
  return best;
}

// Harvests handles to lane-owned state from one token stream:
// `Kubelet* k`, `const Gateway& g`, ... -> var name -> owning lane.
// By-value members are not handles (they *are* the lane's state).
void HarvestLaneVars(const Tokens& t, const Options& opts,
                     std::map<std::string, std::string>& vars) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const auto it = opts.lane_of.find(t[i].text);
    if (it == opts.lane_of.end()) continue;
    std::size_t j = i + 1;
    bool handle = false;
    while (j < t.size() &&
           (Is(t, j, "*") || Is(t, j, "&") || t[j].text == "const")) {
      handle = handle || Is(t, j, "*") || Is(t, j, "&");
      ++j;
    }
    if (!handle || j >= t.size() || t[j].kind != TokKind::kIdent) continue;
    if (Is(t, j + 1, "(")) continue;  // accessor signature, not a var
    vars[t[j].text] = it->second;
  }
}

// After the identifier at `i`, returns the index of a member name in
// `x.member` / `x->member` position, or t.size().
std::size_t MemberNameAfter(const Tokens& t, std::size_t i) {
  std::size_t j = i + 1;
  if (Is(t, j, ".")) {
    ++j;
  } else if (Is(t, j, "-") && Is(t, j + 1, ">")) {
    j += 2;
  } else {
    return t.size();
  }
  return (j < t.size() && t[j].kind == TokKind::kIdent) ? j : t.size();
}

// R7 + R8 over one token stream. `vars` holds foreign-handle names
// harvested from the file and its sibling header.
void RunLaneRules(const std::string& path, const Tokens& t,
                  const std::map<std::string, std::string>& vars,
                  const Options& opts, bool want_r7, bool want_r8,
                  std::vector<Finding>& out) {
  const std::vector<LaneRegion> regions = FindLaneRegions(t, opts);
  if (regions.empty()) return;

  // R8a: raw foreign handles stored as members (class-body regions,
  // brace depth 1 — method bodies and nested scopes sit deeper).
  if (want_r8) {
    for (const LaneRegion& r : regions) {
      if (!r.class_body) continue;
      int depth = 1;
      int parens = 0;  // parameter lists sit at brace depth 1 too
      for (std::size_t i = r.begin + 1; i < r.end; ++i) {
        if (t[i].kind == TokKind::kPunct) {
          if (t[i].text == "{") ++depth;
          if (t[i].text == "}") --depth;
          if (t[i].text == "(") ++parens;
          if (t[i].text == ")") --parens;
          continue;
        }
        if (depth != 1 || parens != 0 || t[i].kind != TokKind::kIdent) {
          continue;
        }
        const auto it = opts.lane_of.find(t[i].text);
        if (it == opts.lane_of.end() || it->second == r.lane) continue;
        std::size_t j = i + 1;
        bool handle = false;
        while (j < r.end &&
               (Is(t, j, "*") || Is(t, j, "&") || t[j].text == "const")) {
          handle = handle || Is(t, j, "*") || Is(t, j, "&");
          ++j;
        }
        if (!handle || j >= r.end || t[j].kind != TokKind::kIdent) continue;
        if (Is(t, j + 1, "(")) continue;  // member function, not state
        out.push_back(
            {path, t[j].line, "R8",
             "'" + r.cls + "' (lane '" + r.lane + "') stores a raw " +
                 "handle '" + t[j].text + "' to lane-'" + it->second +
                 "' state across events - cross-lane reach must go "
                 "through a KD_LANE_SEAM conduit, not a held pointer",
             false,
             ""});
      }
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;

    // R8b: foreign handle mentioned inside a closure passed to
    // Schedule* — captured cross-lane reach deferred to a later event.
    if (want_r8 && ScheduleEntryPoints().count(t[i].text) > 0 &&
        Is(t, i + 1, "(")) {
      const LaneRegion* region = RegionAt(regions, i);
      if (region != nullptr) {
        const std::size_t close = MatchForward(t, i + 1, "(", ")");
        for (std::size_t j = i + 2; j < close; ++j) {
          if (!Is(t, j, "[") || !(Is(t, j - 1, "(") || Is(t, j - 1, ","))) {
            continue;
          }
          const std::size_t cap_end = MatchForward(t, j, "[", "]");
          const std::size_t lam_end = LambdaEnd(t, cap_end);
          for (std::size_t k = j + 1; k < lam_end; ++k) {
            if (t[k].kind != TokKind::kIdent) continue;
            const auto vit = vars.find(t[k].text);
            if (vit == vars.end() || vit->second == region->lane) continue;
            out.push_back(
                {path, t[k].line, "R8",
                 "closure scheduled from lane '" + region->lane +
                     "' captures '" + t[k].text + "', a handle to lane-'" +
                     vit->second +
                     "' state - the event would touch foreign state after "
                     "the lane barrier; route through a KD_LANE_SEAM",
                 false,
                 ""});
            break;
          }
        }
      }
    }

    if (!want_r7) continue;
    const LaneRegion* region = RegionAt(regions, i);
    if (region == nullptr) continue;

    // R7a: member call through a foreign handle: `k->Evict(...)`.
    const auto vit = vars.find(t[i].text);
    if (vit != vars.end() && vit->second != region->lane) {
      const std::size_t m = MemberNameAfter(t, i);
      if (m != t.size() && Is(t, m + 1, "(")) {
        out.push_back(
            {path, t[m].line, "R7",
             "'" + region->cls + "' (lane '" + region->lane +
                 "') reaches lane-'" + vit->second + "' state through '" +
                 t[i].text + "." + t[m].text +
                 "' - cross-lane effects must route through a "
                 "KD_LANE_SEAM conduit (net::, hierarchy, ApiClient, "
                 "watch hub)",
             false,
             ""});
      }
      continue;
    }
    // R7b: accessor chain: `cluster_.autoscaler().ScaleTo(...)` — the
    // accessor returns a foreign-owned reference.
    const auto ait = opts.accessor_lane.find(t[i].text);
    if (ait != opts.accessor_lane.end() && ait->second != region->lane &&
        Is(t, i + 1, "(")) {
      const std::size_t pc = MatchForward(t, i + 1, "(", ")");
      if (pc == t.size()) continue;
      const std::size_t m = MemberNameAfter(t, pc);
      if (m != t.size() && Is(t, m + 1, "(")) {
        out.push_back(
            {path, t[m].line, "R7",
             "'" + region->cls + "' (lane '" + region->lane +
                 "') reaches lane-'" + ait->second + "' state through '" +
                 t[i].text + "()." + t[m].text +
                 "' - cross-lane effects must route through a "
                 "KD_LANE_SEAM conduit (net::, hierarchy, ApiClient, "
                 "watch hub)",
             false,
             ""});
      }
    }
  }
}

}  // namespace

void Suppressions::Apply(Finding& f) const {
  if (whole_file.count(f.rule) > 0) {
    f.suppressed = true;
    f.suppress_reason = whole_file_reason;
    return;
  }
  auto it = by_line.find(f.line);
  if (it != by_line.end() && it->second.count(f.rule) > 0) {
    f.suppressed = true;
    auto rit = reason_by_line.find(f.line);
    if (rit != reason_by_line.end()) f.suppress_reason = rit->second;
  }
}

Suppressions ParseSuppressions(const std::string& source) {
  Suppressions sup;
  std::istringstream stream(source);
  std::string raw;
  int line = 0;
  while (std::getline(stream, raw)) {
    ++line;
    const std::size_t marker = raw.find("kdlint:");
    if (marker == std::string::npos) continue;
    std::size_t p = raw.find_first_not_of(' ', marker + 7);
    if (p == std::string::npos) continue;
    bool file_wide = false;
    if (raw.compare(p, 11, "allow-file(") == 0) {
      file_wide = true;
      p += 11;
    } else if (raw.compare(p, 6, "allow(") == 0) {
      p += 6;
    } else {
      continue;
    }
    const std::size_t close = raw.find(')', p);
    if (close == std::string::npos) continue;
    std::set<std::string> rules;
    std::string rule;
    for (std::size_t q = p; q <= close; ++q) {
      if (q == close || raw[q] == ',') {
        if (!rule.empty()) rules.insert(rule);
        rule.clear();
      } else if (!std::isspace(static_cast<unsigned char>(raw[q]))) {
        rule += raw[q];
      }
    }
    std::string reason = raw.substr(close + 1);
    const std::size_t first = reason.find_first_not_of(" \t");
    reason = first == std::string::npos ? "" : reason.substr(first);
    // A reason is mandatory. An empty one is rejected — the
    // suppression takes no effect — and recorded for R0 so the
    // exception inventory cannot silently rot.
    if (reason.empty()) {
      std::string rule_list;
      for (const std::string& r : rules) {
        if (!rule_list.empty()) rule_list += ",";
        rule_list += r;
      }
      sup.missing_reason[line] = rule_list;
      continue;
    }
    if (file_wide) {
      sup.whole_file.insert(rules.begin(), rules.end());
      sup.whole_file_reason = reason;
      continue;
    }
    // The comment covers its own line; a comment-only line also covers
    // the line below it.
    const std::size_t comment = raw.find("//");
    const bool own_line =
        comment != std::string::npos &&
        raw.find_first_not_of(" \t") == comment;
    for (const std::string& r : rules) {
      sup.by_line[line].insert(r);
      if (own_line) sup.by_line[line + 1].insert(r);
    }
    sup.reason_by_line[line] = reason;
    if (own_line) sup.reason_by_line[line + 1] = reason;
  }
  return sup;
}

bool RuleAppliesTo(const Options& opts, const std::string& rule,
                   const std::string& path) {
  if (!opts.repo_scope) return true;
  auto under = [&path](const char* dir) {
    const std::string d(dir);
    return path.rfind(d, 0) == 0 || path.find("/" + d) != std::string::npos;
  };
  if (!under("src/")) return false;       // tests/bench own their idioms
  if (rule == "R1") return !under("src/sim/");  // the engine owns time
  if (rule == "R9") return !under("src/sim/");  // ...and all threads
  if (rule == "R5") return under("src/controllers/") || under("src/faas/");
  // The router itself is the one place allowed to do shard arithmetic.
  if (rule == "R6") return !under("src/apiserver/");
  return true;
}

void HarvestLaneIndex(const std::string& source, Options& opts) {
  const Tokens t = Lex(source);
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool class_key = t[i].text == "class" || t[i].text == "struct";
    if (!class_key) continue;
    if (Is(t, i + 1, "KD_LANE_OWNED") && Is(t, i + 2, "(")) {
      const std::size_t pc = MatchForward(t, i + 2, "(", ")");
      if (pc == t.size() || pc != i + 4) continue;  // one-token lane name
      if (t[i + 3].kind != TokKind::kIdent) continue;
      if (pc + 1 < t.size() && t[pc + 1].kind == TokKind::kIdent) {
        opts.lane_of[t[pc + 1].text] = t[i + 3].text;
      }
    } else if (Is(t, i + 1, "KD_LANE_SEAM") && i + 2 < t.size() &&
               t[i + 2].kind == TokKind::kIdent) {
      opts.seam_types.insert(t[i + 2].text);
    }
  }
  // Accessors returning a lane-owned reference/pointer: the chain
  // `x.accessor().Mutate()` reaches foreign state without ever naming
  // the class in the calling file, so the index must know them.
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const auto it = opts.lane_of.find(t[i].text);
    if (it == opts.lane_of.end()) continue;
    std::size_t j = i + 1;
    bool handle = false;
    while (j < t.size() &&
           (Is(t, j, "*") || Is(t, j, "&") || t[j].text == "const")) {
      handle = handle || Is(t, j, "*") || Is(t, j, "&");
      ++j;
    }
    if (!handle || j + 1 >= t.size()) continue;
    if (t[j].kind == TokKind::kIdent && Is(t, j + 1, "(") &&
        t[j].text != t[i].text) {
      opts.accessor_lane[t[j].text] = it->second;
    }
  }
}

std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& source,
                                   const std::string& sibling_header,
                                   const Options& opts) {
  const Tokens toks = Lex(source);
  const Tokens sib_toks =
      sibling_header.empty() ? Tokens{} : Lex(sibling_header);
  Decls decls;
  if (!sib_toks.empty()) {
    ScanDecls(path, sib_toks, decls, /*out=*/nullptr);
  }

  std::vector<Finding> out;
  auto want = [&opts, &path](const char* rule) {
    return (opts.rules.empty() || opts.rules.count(rule) > 0) &&
           RuleAppliesTo(opts, rule, path);
  };

  // Declaration scan always runs (R2/R5 need the names); R3 findings
  // are dropped afterwards if the rule is off for this file.
  std::vector<Finding> r3;
  ScanDecls(path, toks, decls, &r3);
  if (want("R3")) out.insert(out.end(), r3.begin(), r3.end());
  if (want("R1")) RunR1(path, toks, out);
  if (want("R2")) RunR2(path, toks, decls, out);
  if (want("R4")) RunR4(path, toks, out);
  if (want("R5")) RunR5(path, toks, decls, out);
  if (want("R6")) RunR6(path, toks, out);
  if (want("R9")) RunR9(path, toks, out);
  if ((want("R7") || want("R8")) && !opts.lane_of.empty()) {
    std::map<std::string, std::string> lane_vars;
    HarvestLaneVars(toks, opts, lane_vars);
    if (!sib_toks.empty()) HarvestLaneVars(sib_toks, opts, lane_vars);
    RunLaneRules(path, toks, lane_vars, opts, want("R7"), want("R8"),
                 out);
  }

  const Suppressions sup = ParseSuppressions(source);
  if (want("R0")) {
    for (const auto& [line, rule_list] : sup.missing_reason) {
      out.push_back({path, line, "R0",
                     "suppression 'allow(" + rule_list +
                         ")' carries no reason, so it is rejected - every "
                         "kdlint exception must say why (see LINT.md)",
                     false,
                     ""});
    }
  }
  for (Finding& f : out) {
    sup.Apply(f);
    if (!f.suppressed &&
        opts.baseline.count(f.file + ":" + std::to_string(f.line) + ":" +
                            f.rule) > 0) {
      f.suppressed = true;
      f.suppress_reason = "baseline";
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const Finding& f) {
  std::string out = "{\"file\":\"" + JsonEscape(f.file) + "\"";
  out += ",\"line\":" + std::to_string(f.line);
  out += ",\"rule\":\"" + f.rule + "\"";
  out += ",\"message\":\"" + JsonEscape(f.message) + "\"";
  out += std::string(",\"suppressed\":") + (f.suppressed ? "true" : "false");
  out += ",\"reason\":\"" + JsonEscape(f.suppress_reason) + "\"}";
  return out;
}

std::string ToSarif(const std::vector<Finding>& findings) {
  // Rule catalogue for tool.driver.rules; GitHub code scanning keys
  // its UI off these ids.
  static const std::pair<const char*, const char*> kRules[] = {
      {"R0", "kdlint suppressions must carry a reason"},
      {"R1", "no wall clock / ambient entropy in product code"},
      {"R2", "unordered-container iteration must not feed event order"},
      {"R3", "no pointer values as container keys"},
      {"R4", "no blanket [&] / this-smuggling [=] captures into Schedule*"},
      {"R5", "controllers never mutate ObjectCache directly"},
      {"R6", "shard routing goes through ShardRouter"},
      {"R7", "events may only reach state owned by their lane"},
      {"R8", "no raw cross-lane handles stored or captured across events"},
      {"R9", "no raw threading primitives outside the engine (src/sim)"},
  };
  std::string out;
  out += "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",";
  out += "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{";
  out += "\"name\":\"kdlint\",\"informationUri\":";
  out += "\"LINT.md\",\"rules\":[";
  bool first = true;
  for (const auto& [id, text] : kRules) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"" + std::string(id) +
           "\",\"shortDescription\":{\"text\":\"" + JsonEscape(text) +
           "\"}}";
  }
  out += "]}},\"results\":[";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"ruleId\":\"" + f.rule + "\",\"level\":\"error\",";
    out += "\"message\":{\"text\":\"" + JsonEscape(f.message) + "\"},";
    out += "\"locations\":[{\"physicalLocation\":{\"artifactLocation\":";
    out += "{\"uri\":\"" + JsonEscape(f.file) + "\"},\"region\":";
    out += "{\"startLine\":" + std::to_string(f.line) + "}}}]";
    if (f.suppressed) {
      out += ",\"suppressions\":[{\"kind\":\"inSource\",";
      out += "\"justification\":\"" + JsonEscape(f.suppress_reason) +
             "\"}]";
    }
    out += "}";
  }
  out += "]}]}";
  return out;
}

}  // namespace kdlint
