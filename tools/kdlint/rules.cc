// Token-mode implementations of R1-R5 plus suppression handling.
//
// The analyses are deliberately structural rather than semantic: each
// rule keys off token patterns that are unambiguous in this codebase's
// idiom (see LINT.md for what each rule intentionally does and does
// not catch). Where a rule needs declaration context that lives in a
// paired header (R2/R5 receiver types for members of a .cc's class),
// the caller passes the sibling header text and we harvest
// declarations from it without emitting findings for it — the header
// is swept as its own input file.
#include "kdlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "lexer.h"

namespace kdlint {
namespace {

const std::set<std::string>& UnorderedContainers() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::set<std::string>& OrderedContainers() {
  static const std::set<std::string> kSet = {"map", "set", "multimap",
                                             "multiset", "priority_queue"};
  return kSet;
}

// R1: ambient-nondeterminism sources. Each of these injects host state
// (wall clock, entropy, environment) that differs run to run.
const std::set<std::string>& BannedIdents() {
  static const std::set<std::string> kSet = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "random_device",  "gettimeofday", "clock_gettime",
      "localtime",      "localtime_r",  "gmtime",
      "mktime",         "getenv",       "setenv",
      "srand",          "rand",         "drand48",
      "random_shuffle", "sleep_for",    "sleep_until",
      "nanosleep",      "usleep"};
  return kSet;
}

// R2/R4: calls through which iteration order or a closure escapes into
// the event schedule or onto the wire.
const std::set<std::string>& OrderEscapingCalls() {
  static const std::set<std::string> kSet = {
      "ScheduleAt", "ScheduleAfter", "Schedule",    "Send",
      "Enqueue",    "EnqueueAfter",  "Create",      "Update",
      "Delete",     "Upsert",        "Remove",      "MarkInvalid",
      "DropInvalid", "Publish",      "Emit",        "Push",
      "Dispatch"};
  return kSet;
}

const std::set<std::string>& ScheduleEntryPoints() {
  static const std::set<std::string> kSet = {"ScheduleAt", "ScheduleAfter",
                                             "Schedule"};
  return kSet;
}

// R5: ObjectCache mutators a policy class must not call directly.
const std::set<std::string>& CacheMutators() {
  static const std::set<std::string> kSet = {"Upsert", "Remove", "MarkInvalid",
                                             "DropInvalid", "Clear"};
  return kSet;
}

bool ContainsNoCase(const std::string& haystack, const std::string& needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::tolower(static_cast<unsigned char>(a)) ==
                                 std::tolower(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

using Tokens = std::vector<Token>;

bool Is(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

// Index of the matching closer for the opener at `i`, or t.size().
std::size_t MatchForward(const Tokens& t, std::size_t i, const char* open,
                         const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

// Matches the template argument list opened by `<` at index `i`.
// Counts only angle tokens; `>>` lexes as two `>` so nested closers
// work. `->` inside a template argument list would miscount, but no
// type expression in this codebase (or any sane one) contains one.
std::size_t MatchAngle(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">" && --depth == 0) return j;
    // A statement terminator inside an "argument list" means this `<`
    // was a comparison after all; bail out.
    if (t[j].text == ";" || t[j].text == "{") return t.size();
  }
  return t.size();
}

// Declaration facts harvested from one token stream.
struct Decls {
  std::set<std::string> unordered_vars;  // names with unordered_* type
  std::set<std::string> cache_vars;      // names with ObjectCache type
};

// Scans container/ObjectCache declarations. Emits R3 findings into
// `out` when it is non-null (null for sibling-header harvesting).
void ScanDecls(const std::string& path, const Tokens& t, Decls& decls,
               std::vector<Finding>* out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool unordered = UnorderedContainers().count(t[i].text) > 0;
    const bool ordered = OrderedContainers().count(t[i].text) > 0;
    if (unordered || ordered) {
      if (!Is(t, i + 1, "<")) continue;
      const std::size_t close = MatchAngle(t, i + 1);
      if (close == t.size()) continue;
      // First template argument: tokens at angle depth 1 up to the
      // first comma (or the closer, for sets).
      std::size_t arg_end = close;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].kind != TokKind::kPunct) continue;
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
        if (t[j].text == "," && depth == 1) {
          arg_end = j;
          break;
        }
      }
      if (out != nullptr && arg_end > i + 2 && Is(t, arg_end - 1, "*")) {
        out->push_back(
            {path, t[i].line, "R3",
             "container '" + t[i].text +
                 "' is keyed by a pointer; pointer values differ across "
                 "runs, so any order or hash derived from them is "
                 "nondeterministic - key by a stable id instead",
             false,
             ""});
      }
      // Variable name, if this is a declaration: skip cv/ref tokens
      // after the closing `>`.
      std::size_t j = close + 1;
      while (j < t.size() &&
             (Is(t, j, "&") || Is(t, j, "*") || t[j].text == "const")) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdent && unordered) {
        decls.unordered_vars.insert(t[j].text);
      }
      i = close;
      continue;
    }
    if (t[i].text == "ObjectCache") {
      std::size_t j = i + 1;
      while (j < t.size() &&
             (Is(t, j, "&") || Is(t, j, "*") || t[j].text == "const")) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        decls.cache_vars.insert(t[j].text);
      }
    }
  }
}

// R1 over one token stream.
void RunR1(const std::string& path, const Tokens& t,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    bool hit = BannedIdents().count(id) > 0;
    // `time` is too common a word to ban outright; flag the function
    // call forms `std::time(...)` / `::time(...)`.
    if (!hit && id == "time" && Is(t, i + 1, "(") && i >= 2 &&
        Is(t, i - 1, ":") && Is(t, i - 2, ":")) {
      hit = true;
    }
    if (!hit) continue;
    // Member accesses (`foo.rand()`) are somebody else's rand.
    if (i >= 1 && (Is(t, i - 1, ".") ||
                   (i >= 2 && Is(t, i - 1, ">") && Is(t, i - 2, "-")))) {
      continue;
    }
    out.push_back({path, t[i].line, "R1",
                   "nondeterministic source '" + id +
                       "' (wall clock / ambient entropy) - product code "
                       "must use sim::Engine::now() and kd::Rng so runs "
                       "stay bit-reproducible",
                   false,
                   ""});
  }
}

// Returns the index one past the end of the statement or block that
// starts at `i` (the loop body).
std::size_t BodyEnd(const Tokens& t, std::size_t i) {
  if (Is(t, i, "{")) {
    const std::size_t close = MatchForward(t, i, "{", "}");
    return close == t.size() ? close : close + 1;
  }
  int paren = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "(") ++paren;
    if (t[j].text == ")") --paren;
    if (t[j].text == ";" && paren == 0) return j + 1;
  }
  return t.size();
}

// R2 over one token stream, using unordered var names from `decls`.
void RunR2(const std::string& path, const Tokens& t, const Decls& decls,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].kind == TokKind::kIdent && t[i].text == "for" &&
          Is(t, i + 1, "("))) {
      continue;
    }
    const std::size_t close = MatchForward(t, i + 1, "(", ")");
    if (close == t.size()) continue;
    // Does the loop header iterate an unordered container? Range-for:
    // an unordered name (or unordered_* type of a temporary) appears
    // after the depth-1 `:`. Iterator loop: `x.begin()`/`x.cbegin()`
    // with x unordered. Checking the whole header for either pattern
    // keeps this robust to both forms.
    std::string culprit;
    for (std::size_t j = i + 2; j < close && culprit.empty(); ++j) {
      if (t[j].kind != TokKind::kIdent) continue;
      if (decls.unordered_vars.count(t[j].text) > 0) culprit = t[j].text;
      if (UnorderedContainers().count(t[j].text) > 0) culprit = t[j].text;
    }
    if (culprit.empty()) continue;
    const std::size_t body_end = BodyEnd(t, close + 1);
    for (std::size_t j = close + 1; j < body_end; ++j) {
      if (t[j].kind == TokKind::kIdent &&
          OrderEscapingCalls().count(t[j].text) > 0 && Is(t, j + 1, "(")) {
        out.push_back(
            {path, t[i].line, "R2",
             "iteration over unordered container '" + culprit +
                 "' calls '" + t[j].text +
                 "' - hash-table order escapes into event/wire order; "
                 "iterate an ordered container or a sorted snapshot",
             false,
             ""});
        break;
      }
    }
  }
}

// R4 over one token stream.
void RunR4(const std::string& path, const Tokens& t,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].kind == TokKind::kIdent &&
          ScheduleEntryPoints().count(t[i].text) > 0 && Is(t, i + 1, "("))) {
      continue;
    }
    const std::size_t close = MatchForward(t, i + 1, "(", ")");
    for (std::size_t j = i + 2; j < close; ++j) {
      // Lambda introducer: `[` in argument position.
      if (!Is(t, j, "[") || !(Is(t, j - 1, "(") || Is(t, j - 1, ","))) {
        continue;
      }
      const std::size_t cap_end = MatchForward(t, j, "[", "]");
      for (std::size_t k = j + 1; k < cap_end; ++k) {
        // A blanket `&` capture-default: `&` directly followed by `]`
        // or `,` (explicit `&name` captures are fine).
        if (Is(t, k, "&") && (k + 1 == cap_end || Is(t, k + 1, ","))) {
          out.push_back(
              {path, t[k].line, "R4",
               "closure passed to '" + t[i].text +
                   "' captures by blanket reference [&] - locals it "
                   "captures are dead by the time the event fires; "
                   "capture explicitly by value (guard re-entrancy with "
                   "an epoch or EventId)",
               false,
               ""});
          break;
        }
      }
    }
  }
}

// R5 over one token stream, using cache var names from `decls`.
void RunR5(const std::string& path, const Tokens& t, const Decls& decls,
           std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool known_cache = decls.cache_vars.count(t[i].text) > 0;
    // Fallback for receivers whose declaration we cannot see (e.g. a
    // member of a base class): anything *named* like a cache.
    const bool named_cache = ContainsNoCase(t[i].text, "cache");
    if (!known_cache && !named_cache) continue;
    std::size_t j = i + 1;
    if (Is(t, j, ".")) {
      ++j;
    } else if (Is(t, j, "-") && Is(t, j + 1, ">")) {
      j += 2;
    } else {
      continue;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        CacheMutators().count(t[j].text) > 0 && Is(t, j + 1, "(")) {
      out.push_back(
          {path, t[j].line, "R5",
           "policy class mutates ObjectCache '" + t[i].text + "' via '" +
               t[j].text +
               "' - object mutations must flow through runtime::ApiClient "
               "or a harness seam (annotate deliberate ingress/"
               "write-through paths with kdlint: allow(R5))",
           false,
           ""});
    }
  }
}

// R6 over one token stream: shard routing must go through ShardRouter.
// A `%` with a shard-named identifier in arm's reach is hand-rolled
// keyspace partitioning (`hash % num_shards`, `shard = h % S`); such
// arithmetic outside src/apiserver silently diverges from the router's
// mapping the moment its hash or clamping changes, so every other
// layer must ask the router instead. Purely lexical on purpose: the
// rule needs no types, only the operator and a nearby name.
void RunR6(const std::string& path, const Tokens& t,
           std::vector<Finding>& out) {
  constexpr std::size_t kWindow = 4;  // tokens on either side of `%`
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || t[i].text != "%") continue;
    const std::size_t lo = i > kWindow ? i - kWindow : 0;
    const std::size_t hi = std::min(t.size(), i + kWindow + 1);
    std::string culprit;
    for (std::size_t j = lo; j < hi && culprit.empty(); ++j) {
      if (t[j].kind == TokKind::kIdent &&
          ContainsNoCase(t[j].text, "shard")) {
        culprit = t[j].text;
      }
    }
    if (culprit.empty()) continue;
    out.push_back({path, t[i].line, "R6",
                   "shard arithmetic on '" + culprit +
                       "' - the key->shard mapping must go through "
                       "apiserver::ShardRouter so every layer agrees on "
                       "the partitioning (and S=1 stays hash-free)",
                   false,
                   ""});
  }
}

}  // namespace

void Suppressions::Apply(Finding& f) const {
  if (whole_file.count(f.rule) > 0) {
    f.suppressed = true;
    f.suppress_reason = whole_file_reason;
    return;
  }
  auto it = by_line.find(f.line);
  if (it != by_line.end() && it->second.count(f.rule) > 0) {
    f.suppressed = true;
    auto rit = reason_by_line.find(f.line);
    if (rit != reason_by_line.end()) f.suppress_reason = rit->second;
  }
}

Suppressions ParseSuppressions(const std::string& source) {
  Suppressions sup;
  std::istringstream stream(source);
  std::string raw;
  int line = 0;
  while (std::getline(stream, raw)) {
    ++line;
    const std::size_t marker = raw.find("kdlint:");
    if (marker == std::string::npos) continue;
    std::size_t p = raw.find_first_not_of(' ', marker + 7);
    if (p == std::string::npos) continue;
    bool file_wide = false;
    if (raw.compare(p, 11, "allow-file(") == 0) {
      file_wide = true;
      p += 11;
    } else if (raw.compare(p, 6, "allow(") == 0) {
      p += 6;
    } else {
      continue;
    }
    const std::size_t close = raw.find(')', p);
    if (close == std::string::npos) continue;
    std::set<std::string> rules;
    std::string rule;
    for (std::size_t q = p; q <= close; ++q) {
      if (q == close || raw[q] == ',') {
        if (!rule.empty()) rules.insert(rule);
        rule.clear();
      } else if (!std::isspace(static_cast<unsigned char>(raw[q]))) {
        rule += raw[q];
      }
    }
    std::string reason = raw.substr(close + 1);
    const std::size_t first = reason.find_first_not_of(" \t");
    reason = first == std::string::npos ? "" : reason.substr(first);
    if (file_wide) {
      sup.whole_file.insert(rules.begin(), rules.end());
      sup.whole_file_reason = reason;
      continue;
    }
    // The comment covers its own line; a comment-only line also covers
    // the line below it.
    const std::size_t comment = raw.find("//");
    const bool own_line =
        comment != std::string::npos &&
        raw.find_first_not_of(" \t") == comment;
    for (const std::string& r : rules) {
      sup.by_line[line].insert(r);
      if (own_line) sup.by_line[line + 1].insert(r);
    }
    sup.reason_by_line[line] = reason;
    if (own_line) sup.reason_by_line[line + 1] = reason;
  }
  return sup;
}

bool RuleAppliesTo(const Options& opts, const std::string& rule,
                   const std::string& path) {
  if (!opts.repo_scope) return true;
  auto under = [&path](const char* dir) {
    const std::string d(dir);
    return path.rfind(d, 0) == 0 || path.find("/" + d) != std::string::npos;
  };
  if (!under("src/")) return false;       // tests/bench own their idioms
  if (rule == "R1") return !under("src/sim/");  // the engine owns time
  if (rule == "R5") return under("src/controllers/") || under("src/faas/");
  // The router itself is the one place allowed to do shard arithmetic.
  if (rule == "R6") return !under("src/apiserver/");
  return true;
}

std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& source,
                                   const std::string& sibling_header,
                                   const Options& opts) {
  const Tokens toks = Lex(source);
  Decls decls;
  if (!sibling_header.empty()) {
    const Tokens sib = Lex(sibling_header);
    ScanDecls(path, sib, decls, /*out=*/nullptr);
  }

  std::vector<Finding> out;
  auto want = [&opts, &path](const char* rule) {
    return (opts.rules.empty() || opts.rules.count(rule) > 0) &&
           RuleAppliesTo(opts, rule, path);
  };

  // Declaration scan always runs (R2/R5 need the names); R3 findings
  // are dropped afterwards if the rule is off for this file.
  std::vector<Finding> r3;
  ScanDecls(path, toks, decls, &r3);
  if (want("R3")) out.insert(out.end(), r3.begin(), r3.end());
  if (want("R1")) RunR1(path, toks, out);
  if (want("R2")) RunR2(path, toks, decls, out);
  if (want("R4")) RunR4(path, toks, out);
  if (want("R5")) RunR5(path, toks, decls, out);
  if (want("R6")) RunR6(path, toks, out);

  const Suppressions sup = ParseSuppressions(source);
  for (Finding& f : out) {
    sup.Apply(f);
    if (!f.suppressed &&
        opts.baseline.count(f.file + ":" + std::to_string(f.line) + ":" +
                            f.rule) > 0) {
      f.suppressed = true;
      f.suppress_reason = "baseline";
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const Finding& f) {
  std::string out = "{\"file\":\"" + JsonEscape(f.file) + "\"";
  out += ",\"line\":" + std::to_string(f.line);
  out += ",\"rule\":\"" + f.rule + "\"";
  out += ",\"message\":\"" + JsonEscape(f.message) + "\"";
  out += std::string(",\"suppressed\":") + (f.suppressed ? "true" : "false");
  out += ",\"reason\":\"" + JsonEscape(f.suppress_reason) + "\"}";
  return out;
}

}  // namespace kdlint
