// kdlint driver: argument parsing, file discovery, mode selection,
// reporting. See kdlint.h for the rule catalogue and LINT.md for the
// full manual.
//
//   kdlint [--mode=auto|token|clang] [--json] [--sarif] [--rules=R1,R2]
//          [--repo-scope] [--show-suppressed] [--baseline=FILE]
//          [--write-baseline=FILE] [--compile-commands=DIR]
//          [--capabilities] <file-or-dir>...
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "kdlint.h"

namespace kdlint {
namespace {

namespace fs = std::filesystem;

struct Cli {
  Options opts;
  std::string mode = "auto";
  bool json = false;
  bool sarif = false;
  bool capabilities = false;
  std::string baseline_in;
  std::string baseline_out;
  std::string compile_commands_dir;
  std::vector<std::string> paths;
};

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--mode=auto|token|clang] [--json] [--sarif] [--rules=R1,..] "
         "[--repo-scope]\n"
         "       [--show-suppressed] [--baseline=FILE] "
         "[--write-baseline=FILE]\n"
         "       [--compile-commands=DIR] [--capabilities] "
         "<file-or-dir>...\n";
  return 2;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ParseArgs(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--sarif") {
      cli.sarif = true;
    } else if (arg == "--repo-scope") {
      cli.opts.repo_scope = true;
    } else if (arg == "--show-suppressed") {
      cli.opts.show_suppressed = true;
    } else if (arg == "--capabilities") {
      cli.capabilities = true;
    } else if (StartsWith(arg, "--mode=")) {
      cli.mode = arg.substr(7);
      if (cli.mode != "auto" && cli.mode != "token" && cli.mode != "clang") {
        return false;
      }
    } else if (StartsWith(arg, "--rules=")) {
      std::stringstream ss(arg.substr(8));
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        if (!rule.empty()) cli.opts.rules.insert(rule);
      }
    } else if (StartsWith(arg, "--baseline=")) {
      cli.baseline_in = arg.substr(11);
    } else if (StartsWith(arg, "--write-baseline=")) {
      cli.baseline_out = arg.substr(17);
    } else if (StartsWith(arg, "--compile-commands=")) {
      cli.compile_commands_dir = arg.substr(19);
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      cli.paths.push_back(arg);
    }
  }
  return true;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

// Expands file/directory arguments into a sorted, de-duplicated list
// of source files. Build trees are skipped so `kdlint .` stays sane.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths,
                                      bool& ok) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        const fs::path& entry = it->path();
        const std::string name = entry.filename().string();
        if (it->is_directory() &&
            (StartsWith(name, "build") || name == ".git")) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFile(entry)) {
          files.push_back(entry.generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(fs::path(p).generic_string());
    } else {
      std::cerr << "kdlint: no such file or directory: " << p << "\n";
      ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool LoadBaseline(const std::string& path, std::set<std::string>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') out.insert(line);
  }
  return true;
}

void RunTokenMode(const std::vector<std::string>& files, const Options& opts,
                  std::vector<Finding>& findings) {
  for (const std::string& file : files) {
    std::string source;
    if (!ReadFile(file, source)) {
      std::cerr << "kdlint: cannot read " << file << "\n";
      continue;
    }
    std::string sibling;
    if (fs::path(file).extension() == ".cc") {
      fs::path header = fs::path(file).replace_extension(".h");
      std::error_code ec;
      if (fs::is_regular_file(header, ec)) {
        ReadFile(header.generic_string(), sibling);
      }
    }
    std::vector<Finding> per_file =
        AnalyzeSource(file, source, sibling, opts);
    findings.insert(findings.end(), per_file.begin(), per_file.end());
  }
}

bool ClangModeAvailable() {
#if defined(KDLINT_HAVE_LIBCLANG)
  return true;
#else
  return false;
#endif
}

int Main(int argc, char** argv) {
  Cli cli;
  if (!ParseArgs(argc, argv, cli)) return Usage(argv[0]);
  if (cli.capabilities) {
    std::cout << "modes: token" << (ClangModeAvailable() ? " clang" : "")
              << "\nrules: R0 R1 R2 R3 R4 R5 R6 R7 R8 R9\n"
              << "outputs: text json sarif\n";
    return 0;
  }
  if (cli.paths.empty()) return Usage(argv[0]);
  if (!cli.baseline_in.empty() &&
      !LoadBaseline(cli.baseline_in, cli.opts.baseline)) {
    std::cerr << "kdlint: cannot read baseline " << cli.baseline_in << "\n";
    return 2;
  }

  std::string mode = cli.mode;
  if (mode == "auto") mode = ClangModeAvailable() ? "clang" : "token";
  if (mode == "clang" && !ClangModeAvailable()) {
    std::cerr << "kdlint: built without libclang; clang mode unavailable\n";
    return 2;
  }

  bool ok = true;
  const std::vector<std::string> files = CollectFiles(cli.paths, ok);
  if (!ok) return 2;

  // Cross-TU pre-pass for R7/R8: harvest every KD_LANE_OWNED /
  // KD_LANE_SEAM annotation (and lane-owned accessor signature) from
  // all input files plus their sibling headers, so per-file analysis
  // in either backend sees the whole ownership model even when the
  // annotation lives in a header the input never includes.
  for (const std::string& file : files) {
    std::string source;
    if (ReadFile(file, source)) HarvestLaneIndex(source, cli.opts);
    if (fs::path(file).extension() == ".cc") {
      const fs::path header = fs::path(file).replace_extension(".h");
      std::error_code ec;
      std::string sibling;
      if (fs::is_regular_file(header, ec) &&
          ReadFile(header.generic_string(), sibling)) {
        HarvestLaneIndex(sibling, cli.opts);
      }
    }
  }

  std::vector<Finding> findings;
  if (mode == "clang") {
#if defined(KDLINT_HAVE_LIBCLANG)
    if (!RunClangMode(files, cli.compile_commands_dir, cli.opts, findings)) {
      return 2;
    }
#endif
  } else {
    RunTokenMode(files, cli.opts, findings);
  }

  if (!cli.baseline_out.empty()) {
    std::ofstream out(cli.baseline_out);
    if (!out) {
      std::cerr << "kdlint: cannot write baseline " << cli.baseline_out
                << "\n";
      return 2;
    }
    out << "# kdlint baseline - delete entries as they are fixed\n";
    for (const Finding& f : findings) {
      if (!f.suppressed) {
        out << f.file << ":" << f.line << ":" << f.rule << "\n";
      }
    }
  }

  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const Finding& f : findings) {
    (f.suppressed ? suppressed : unsuppressed) += 1;
  }

  if (cli.sarif) {
    // SARIF always carries the suppressed findings too (as SARIF
    // suppressions) so code scanning shows the audited inventory.
    std::cout << ToSarif(findings) << "\n";
  } else if (cli.json) {
    std::cout << "[\n";
    bool first = true;
    for (const Finding& f : findings) {
      if (f.suppressed && !cli.opts.show_suppressed) continue;
      if (!first) std::cout << ",\n";
      first = false;
      std::cout << ToJson(f);
    }
    std::cout << "\n]\n";
  } else {
    for (const Finding& f : findings) {
      if (f.suppressed && !cli.opts.show_suppressed) continue;
      std::cout << f.file << ":" << f.line << ": " << f.rule
                << (f.suppressed ? " [suppressed]" : "") << ": " << f.message
                << "\n";
    }
  }
  std::cerr << "kdlint: " << unsuppressed << " finding"
            << (unsuppressed == 1 ? "" : "s") << " (" << suppressed
            << " suppressed) in " << files.size() << " files [" << mode
            << " mode]\n";
  return unsuppressed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace kdlint

int main(int argc, char** argv) { return kdlint::Main(argc, argv); }
