// Minimal C++ token scanner for kdlint's fallback (libclang-free) mode.
//
// This is not a compiler front end: it produces a flat token stream
// with line numbers, which is all the kdlint rules need. It does get
// the hard lexical cases right — line/block comments, string and char
// literals (including raw strings), preprocessor lines, and line
// continuations — because a rule that misparses a string literal as
// code produces junk findings.
#pragma once

#include <string>
#include <vector>

namespace kdlint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals
  kString,  // string or char literal (text holds the raw literal)
  kPunct,   // single punctuation character
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

// Lexes `source` into tokens. Comments and preprocessor directives are
// skipped entirely (suppression comments are handled separately from
// the raw line text, see suppress.h). Never fails: unterminated
// constructs simply end the token stream at end of input.
std::vector<Token> Lex(const std::string& source);

}  // namespace kdlint
