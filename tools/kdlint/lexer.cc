#include "lexer.h"

#include <cctype>

namespace kdlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  std::vector<Token> Run() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == '\\' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;  // line continuation
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipPreprocessorLine();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && pos_ + 1 < s_.size()) {
        if (s_[pos_ + 1] == '/') {
          SkipToLineEnd();
          continue;
        }
        if (s_[pos_ + 1] == '*') {
          SkipBlockComment();
          continue;
        }
      }
      if (c == 'R' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '"' &&
          !PrevIsIdentChar()) {
        LexRawString();
        continue;
      }
      if (c == '"' || c == '\'') {
        LexQuoted(c);
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdent();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        LexNumber();
        continue;
      }
      out_.push_back({TokKind::kPunct, std::string(1, c), line_});
      ++pos_;
    }
    return std::move(out_);
  }

 private:
  bool PrevIsIdentChar() const {
    return pos_ > 0 && IsIdentChar(s_[pos_ - 1]);
  }

  void SkipToLineEnd() {
    while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
  }

  void SkipPreprocessorLine() {
    // Honor backslash continuations so multi-line macros stay skipped.
    while (pos_ < s_.size() && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      ++pos_;
    }
  }

  void SkipBlockComment() {
    pos_ += 2;
    while (pos_ < s_.size()) {
      if (s_[pos_] == '\n') ++line_;
      if (s_[pos_] == '*' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  void LexQuoted(char quote) {
    const std::size_t start = pos_;
    const int start_line = line_;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != quote) {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        if (s_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (s_[pos_] == '\n') {
        // Unterminated literal; stop at the line break rather than
        // swallowing the rest of the file.
        break;
      }
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == quote) ++pos_;
    out_.push_back(
        {TokKind::kString, s_.substr(start, pos_ - start), start_line});
  }

  void LexRawString() {
    const std::size_t start = pos_;
    const int start_line = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < s_.size() && s_[pos_] != '(') delim += s_[pos_++];
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = s_.find(closer, pos_);
    if (end == std::string::npos) {
      pos_ = s_.size();
    } else {
      for (std::size_t i = pos_; i < end; ++i) {
        if (s_[i] == '\n') ++line_;
      }
      pos_ = end + closer.size();
    }
    out_.push_back(
        {TokKind::kString, s_.substr(start, pos_ - start), start_line});
  }

  void LexIdent() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && IsIdentChar(s_[pos_])) ++pos_;
    out_.push_back({TokKind::kIdent, s_.substr(start, pos_ - start), line_});
  }

  void LexNumber() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (IsIdentChar(s_[pos_]) || s_[pos_] == '.' ||
            ((s_[pos_] == '+' || s_[pos_] == '-') && pos_ > start &&
             (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E' ||
              s_[pos_ - 1] == 'p' || s_[pos_ - 1] == 'P')))) {
      ++pos_;
    }
    out_.push_back({TokKind::kNumber, s_.substr(start, pos_ - start), line_});
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> out_;
};

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  return Scanner(source).Run();
}

}  // namespace kdlint
