# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/objects_test[1]_include.cmake")
include("/root/repo/build/tests/apiserver_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/kd_message_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/faas_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/active_tracker_test[1]_include.cmake")
