# Empty compiler generated dependencies file for kd_message_test.
# This may be replaced when dependencies are built.
