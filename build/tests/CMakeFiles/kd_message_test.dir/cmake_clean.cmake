file(REMOVE_RECURSE
  "CMakeFiles/kd_message_test.dir/kd_message_test.cc.o"
  "CMakeFiles/kd_message_test.dir/kd_message_test.cc.o.d"
  "kd_message_test"
  "kd_message_test.pdb"
  "kd_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
