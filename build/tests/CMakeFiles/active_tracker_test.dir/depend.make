# Empty dependencies file for active_tracker_test.
# This may be replaced when dependencies are built.
