file(REMOVE_RECURSE
  "CMakeFiles/active_tracker_test.dir/active_tracker_test.cc.o"
  "CMakeFiles/active_tracker_test.dir/active_tracker_test.cc.o.d"
  "active_tracker_test"
  "active_tracker_test.pdb"
  "active_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
