# Empty compiler generated dependencies file for apiserver_test.
# This may be replaced when dependencies are built.
