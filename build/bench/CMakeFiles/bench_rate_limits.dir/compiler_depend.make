# Empty compiler generated dependencies file for bench_rate_limits.
# This may be replaced when dependencies are built.
