file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_limits.dir/bench_rate_limits.cc.o"
  "CMakeFiles/bench_rate_limits.dir/bench_rate_limits.cc.o.d"
  "bench_rate_limits"
  "bench_rate_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
