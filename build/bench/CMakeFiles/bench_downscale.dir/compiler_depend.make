# Empty compiler generated dependencies file for bench_downscale.
# This may be replaced when dependencies are built.
