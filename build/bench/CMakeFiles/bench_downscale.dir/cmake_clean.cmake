file(REMOVE_RECURSE
  "CMakeFiles/bench_downscale.dir/bench_downscale.cc.o"
  "CMakeFiles/bench_downscale.dir/bench_downscale.cc.o.d"
  "bench_downscale"
  "bench_downscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_downscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
