file(REMOVE_RECURSE
  "CMakeFiles/bench_hard_invalidation.dir/bench_hard_invalidation.cc.o"
  "CMakeFiles/bench_hard_invalidation.dir/bench_hard_invalidation.cc.o.d"
  "bench_hard_invalidation"
  "bench_hard_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hard_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
