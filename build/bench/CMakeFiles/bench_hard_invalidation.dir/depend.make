# Empty dependencies file for bench_hard_invalidation.
# This may be replaced when dependencies are built.
