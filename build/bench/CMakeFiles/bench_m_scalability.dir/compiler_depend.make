# Empty compiler generated dependencies file for bench_m_scalability.
# This may be replaced when dependencies are built.
