file(REMOVE_RECURSE
  "CMakeFiles/bench_m_scalability.dir/bench_m_scalability.cc.o"
  "CMakeFiles/bench_m_scalability.dir/bench_m_scalability.cc.o.d"
  "bench_m_scalability"
  "bench_m_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
