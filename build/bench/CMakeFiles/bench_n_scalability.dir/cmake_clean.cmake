file(REMOVE_RECURSE
  "CMakeFiles/bench_n_scalability.dir/bench_n_scalability.cc.o"
  "CMakeFiles/bench_n_scalability.dir/bench_n_scalability.cc.o.d"
  "bench_n_scalability"
  "bench_n_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_n_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
