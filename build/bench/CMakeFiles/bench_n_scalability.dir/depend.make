# Empty dependencies file for bench_n_scalability.
# This may be replaced when dependencies are built.
