# Empty compiler generated dependencies file for bench_soft_invalidation.
# This may be replaced when dependencies are built.
