file(REMOVE_RECURSE
  "CMakeFiles/bench_soft_invalidation.dir/bench_soft_invalidation.cc.o"
  "CMakeFiles/bench_soft_invalidation.dir/bench_soft_invalidation.cc.o.d"
  "bench_soft_invalidation"
  "bench_soft_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soft_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
