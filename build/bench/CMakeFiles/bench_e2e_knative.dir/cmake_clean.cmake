file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_knative.dir/bench_e2e_knative.cc.o"
  "CMakeFiles/bench_e2e_knative.dir/bench_e2e_knative.cc.o.d"
  "bench_e2e_knative"
  "bench_e2e_knative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_knative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
