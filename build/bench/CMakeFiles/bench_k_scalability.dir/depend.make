# Empty dependencies file for bench_k_scalability.
# This may be replaced when dependencies are built.
