file(REMOVE_RECURSE
  "CMakeFiles/bench_k_scalability.dir/bench_k_scalability.cc.o"
  "CMakeFiles/bench_k_scalability.dir/bench_k_scalability.cc.o.d"
  "bench_k_scalability"
  "bench_k_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_k_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
