# Empty dependencies file for bench_e2e_dirigent.
# This may be replaced when dependencies are built.
