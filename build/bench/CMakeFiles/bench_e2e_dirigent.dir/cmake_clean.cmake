file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_dirigent.dir/bench_e2e_dirigent.cc.o"
  "CMakeFiles/bench_e2e_dirigent.dir/bench_e2e_dirigent.cc.o.d"
  "bench_e2e_dirigent"
  "bench_e2e_dirigent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_dirigent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
