file(REMOVE_RECURSE
  "CMakeFiles/kd_apiserver.dir/apiserver.cc.o"
  "CMakeFiles/kd_apiserver.dir/apiserver.cc.o.d"
  "CMakeFiles/kd_apiserver.dir/client.cc.o"
  "CMakeFiles/kd_apiserver.dir/client.cc.o.d"
  "CMakeFiles/kd_apiserver.dir/rate_limiter.cc.o"
  "CMakeFiles/kd_apiserver.dir/rate_limiter.cc.o.d"
  "libkd_apiserver.a"
  "libkd_apiserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_apiserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
