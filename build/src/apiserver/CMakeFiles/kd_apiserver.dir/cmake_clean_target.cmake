file(REMOVE_RECURSE
  "libkd_apiserver.a"
)
