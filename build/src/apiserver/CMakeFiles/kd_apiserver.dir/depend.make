# Empty dependencies file for kd_apiserver.
# This may be replaced when dependencies are built.
