# Empty compiler generated dependencies file for kd_faas.
# This may be replaced when dependencies are built.
