file(REMOVE_RECURSE
  "libkd_faas.a"
)
