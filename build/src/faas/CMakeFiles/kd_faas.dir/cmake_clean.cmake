file(REMOVE_RECURSE
  "CMakeFiles/kd_faas.dir/backend.cc.o"
  "CMakeFiles/kd_faas.dir/backend.cc.o.d"
  "CMakeFiles/kd_faas.dir/gateway.cc.o"
  "CMakeFiles/kd_faas.dir/gateway.cc.o.d"
  "CMakeFiles/kd_faas.dir/platform.cc.o"
  "CMakeFiles/kd_faas.dir/platform.cc.o.d"
  "CMakeFiles/kd_faas.dir/policy.cc.o"
  "CMakeFiles/kd_faas.dir/policy.cc.o.d"
  "libkd_faas.a"
  "libkd_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
