# Empty compiler generated dependencies file for kd_model.
# This may be replaced when dependencies are built.
