file(REMOVE_RECURSE
  "CMakeFiles/kd_model.dir/objects.cc.o"
  "CMakeFiles/kd_model.dir/objects.cc.o.d"
  "CMakeFiles/kd_model.dir/value.cc.o"
  "CMakeFiles/kd_model.dir/value.cc.o.d"
  "libkd_model.a"
  "libkd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
