file(REMOVE_RECURSE
  "libkd_model.a"
)
