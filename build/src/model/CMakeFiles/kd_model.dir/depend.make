# Empty dependencies file for kd_model.
# This may be replaced when dependencies are built.
