file(REMOVE_RECURSE
  "libkd_sim.a"
)
