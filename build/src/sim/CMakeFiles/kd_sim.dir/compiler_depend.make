# Empty compiler generated dependencies file for kd_sim.
# This may be replaced when dependencies are built.
