file(REMOVE_RECURSE
  "libkd_runtime.a"
)
