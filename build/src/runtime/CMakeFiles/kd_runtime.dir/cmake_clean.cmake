file(REMOVE_RECURSE
  "CMakeFiles/kd_runtime.dir/cache.cc.o"
  "CMakeFiles/kd_runtime.dir/cache.cc.o.d"
  "CMakeFiles/kd_runtime.dir/control_loop.cc.o"
  "CMakeFiles/kd_runtime.dir/control_loop.cc.o.d"
  "CMakeFiles/kd_runtime.dir/informer.cc.o"
  "CMakeFiles/kd_runtime.dir/informer.cc.o.d"
  "libkd_runtime.a"
  "libkd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
