# Empty dependencies file for kd_runtime.
# This may be replaced when dependencies are built.
