# Empty dependencies file for kd_cluster.
# This may be replaced when dependencies are built.
