file(REMOVE_RECURSE
  "libkd_cluster.a"
)
