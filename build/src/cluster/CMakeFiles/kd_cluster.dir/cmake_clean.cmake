file(REMOVE_RECURSE
  "CMakeFiles/kd_cluster.dir/cluster.cc.o"
  "CMakeFiles/kd_cluster.dir/cluster.cc.o.d"
  "libkd_cluster.a"
  "libkd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
