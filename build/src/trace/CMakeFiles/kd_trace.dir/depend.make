# Empty dependencies file for kd_trace.
# This may be replaced when dependencies are built.
