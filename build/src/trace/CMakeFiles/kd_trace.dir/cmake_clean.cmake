file(REMOVE_RECURSE
  "CMakeFiles/kd_trace.dir/azure.cc.o"
  "CMakeFiles/kd_trace.dir/azure.cc.o.d"
  "libkd_trace.a"
  "libkd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
