file(REMOVE_RECURSE
  "libkd_trace.a"
)
