file(REMOVE_RECURSE
  "libkd_net.a"
)
