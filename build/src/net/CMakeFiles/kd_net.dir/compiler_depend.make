# Empty compiler generated dependencies file for kd_net.
# This may be replaced when dependencies are built.
