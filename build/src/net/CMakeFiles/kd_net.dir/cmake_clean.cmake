file(REMOVE_RECURSE
  "CMakeFiles/kd_net.dir/network.cc.o"
  "CMakeFiles/kd_net.dir/network.cc.o.d"
  "libkd_net.a"
  "libkd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
