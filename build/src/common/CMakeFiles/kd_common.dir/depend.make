# Empty dependencies file for kd_common.
# This may be replaced when dependencies are built.
