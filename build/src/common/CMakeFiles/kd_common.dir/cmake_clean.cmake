file(REMOVE_RECURSE
  "CMakeFiles/kd_common.dir/cost_model.cc.o"
  "CMakeFiles/kd_common.dir/cost_model.cc.o.d"
  "CMakeFiles/kd_common.dir/logging.cc.o"
  "CMakeFiles/kd_common.dir/logging.cc.o.d"
  "CMakeFiles/kd_common.dir/metrics.cc.o"
  "CMakeFiles/kd_common.dir/metrics.cc.o.d"
  "CMakeFiles/kd_common.dir/status.cc.o"
  "CMakeFiles/kd_common.dir/status.cc.o.d"
  "CMakeFiles/kd_common.dir/strings.cc.o"
  "CMakeFiles/kd_common.dir/strings.cc.o.d"
  "CMakeFiles/kd_common.dir/time.cc.o"
  "CMakeFiles/kd_common.dir/time.cc.o.d"
  "libkd_common.a"
  "libkd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
