# Empty dependencies file for kd_kubedirect.
# This may be replaced when dependencies are built.
