file(REMOVE_RECURSE
  "libkd_kubedirect.a"
)
