file(REMOVE_RECURSE
  "CMakeFiles/kd_kubedirect.dir/hierarchy.cc.o"
  "CMakeFiles/kd_kubedirect.dir/hierarchy.cc.o.d"
  "CMakeFiles/kd_kubedirect.dir/link.cc.o"
  "CMakeFiles/kd_kubedirect.dir/link.cc.o.d"
  "CMakeFiles/kd_kubedirect.dir/materialize.cc.o"
  "CMakeFiles/kd_kubedirect.dir/materialize.cc.o.d"
  "CMakeFiles/kd_kubedirect.dir/message.cc.o"
  "CMakeFiles/kd_kubedirect.dir/message.cc.o.d"
  "CMakeFiles/kd_kubedirect.dir/ownership.cc.o"
  "CMakeFiles/kd_kubedirect.dir/ownership.cc.o.d"
  "libkd_kubedirect.a"
  "libkd_kubedirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_kubedirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
