# Empty dependencies file for kd_controllers.
# This may be replaced when dependencies are built.
