file(REMOVE_RECURSE
  "libkd_controllers.a"
)
