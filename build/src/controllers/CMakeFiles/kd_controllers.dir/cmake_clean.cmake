file(REMOVE_RECURSE
  "CMakeFiles/kd_controllers.dir/autoscaler.cc.o"
  "CMakeFiles/kd_controllers.dir/autoscaler.cc.o.d"
  "CMakeFiles/kd_controllers.dir/deployment_controller.cc.o"
  "CMakeFiles/kd_controllers.dir/deployment_controller.cc.o.d"
  "CMakeFiles/kd_controllers.dir/kubelet.cc.o"
  "CMakeFiles/kd_controllers.dir/kubelet.cc.o.d"
  "CMakeFiles/kd_controllers.dir/replicaset_controller.cc.o"
  "CMakeFiles/kd_controllers.dir/replicaset_controller.cc.o.d"
  "CMakeFiles/kd_controllers.dir/scheduler.cc.o"
  "CMakeFiles/kd_controllers.dir/scheduler.cc.o.d"
  "libkd_controllers.a"
  "libkd_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
