# Empty compiler generated dependencies file for bursty_faas.
# This may be replaced when dependencies are built.
