file(REMOVE_RECURSE
  "CMakeFiles/bursty_faas.dir/bursty_faas.cpp.o"
  "CMakeFiles/bursty_faas.dir/bursty_faas.cpp.o.d"
  "bursty_faas"
  "bursty_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
