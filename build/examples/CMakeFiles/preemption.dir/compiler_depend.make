# Empty compiler generated dependencies file for preemption.
# This may be replaced when dependencies are built.
