# Empty dependencies file for preemption.
# This may be replaced when dependencies are built.
