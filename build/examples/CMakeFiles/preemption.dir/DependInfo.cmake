
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/preemption.cpp" "examples/CMakeFiles/preemption.dir/preemption.cpp.o" "gcc" "examples/CMakeFiles/preemption.dir/preemption.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/kd_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/kd_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/kd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/controllers/CMakeFiles/kd_controllers.dir/DependInfo.cmake"
  "/root/repo/build/src/kubedirect/CMakeFiles/kd_kubedirect.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/kd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/apiserver/CMakeFiles/kd_apiserver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/kd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
