file(REMOVE_RECURSE
  "CMakeFiles/preemption.dir/preemption.cpp.o"
  "CMakeFiles/preemption.dir/preemption.cpp.o.d"
  "preemption"
  "preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
